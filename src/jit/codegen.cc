#include "jit/codegen.h"

#include <dlfcn.h>

#include <atomic>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"
#include "jit/hash_table.h"

namespace hetex::jit {

namespace {

// ---------------------------------------------------------------------------
// Process-wide telemetry
// ---------------------------------------------------------------------------

std::atomic<uint64_t> g_attempts{0};
std::atomic<uint64_t> g_generated{0};
std::atomic<uint64_t> g_fallbacks{0};
std::atomic<uint64_t> g_compiler_invocations{0};
std::atomic<uint64_t> g_compile_failures{0};
std::atomic<uint64_t> g_disk_hits{0};
std::atomic<uint64_t> g_rejected_objects{0};
std::atomic<uint64_t> g_native_invocations{0};

// ---------------------------------------------------------------------------
// Hooks: engine-state operations a generated kernel cannot inline (emit into
// the block machinery, hash-table mutation). The kernel receives these as a C
// function-pointer table; everything else is inlined into the generated TU.
// ---------------------------------------------------------------------------

void HxHookEmit(void* target, const int64_t* vals, int n,
                uint64_t* bytes_written) {
  sim::CostStats tmp;
  static_cast<EmitTarget*>(target)->Append(vals, n, &tmp);
  *bytes_written += tmp.bytes_written;
}

void HxHookHtInsert(void* ht, int64_t key, const int64_t* payload) {
  static_cast<JoinHashTable*>(ht)->Insert(key, payload);
}

void HxHookGroupBy(void* ht, int64_t key, const int64_t* vals, int atomic_mode,
                   uint64_t* probes) {
  static_cast<AggHashTable*>(ht)->Update(key, vals, atomic_mode != 0, probes);
}

// Batched emit: column-major lane buffers, identity selection. AppendBatch is
// byte- and CostStats-identical to n per-row Appends in lane order, so a
// kernel batching through this hook stays a drop-in for the per-row one.
void HxHookEmitBatch(void* target, const int64_t* const* vals, int n_vals,
                     uint64_t n, uint64_t* bytes_written) {
  sim::CostStats tmp;
  static_cast<EmitTarget*>(target)->AppendBatch(vals, n_vals, /*sel=*/nullptr,
                                                n, &tmp);
  *bytes_written += tmp.bytes_written;
}

const void* const kHookTable[kHookCount] = {
    reinterpret_cast<const void*>(&HxHookEmit),
    reinterpret_cast<const void*>(&HxHookHtInsert),
    reinterpret_cast<const void*>(&HxHookGroupBy),
    reinterpret_cast<const void*>(&HxHookEmitBatch),
};

// ---------------------------------------------------------------------------
// Source emission helpers
// ---------------------------------------------------------------------------

std::string S(int64_t v) { return std::to_string(v); }

std::string RegName(int r) { return "r" + std::to_string(r); }

/// Renders an int64 literal; INT64_MIN has no direct decimal spelling.
std::string ImmStr(int64_t v) {
  if (v == INT64_MIN) return "(-9223372036854775807LL - 1)";
  return std::to_string(v) + "LL";
}

const char* ClsCounter(uint8_t cls) {
  switch (cls) {
    case 0: return "s_near";
    case 1: return "s_mid";
    default: return "s_far";
  }
}

/// Per-register constant tracking within a basic block. Assignments are always
/// emitted (dead-store elimination is the C++ compiler's job); folding only
/// substitutes literal operands, elides division-by-zero guards against known
/// nonzero divisors, and resolves constant filters/branches at generation time.
/// State is discarded at every jump-target label, where paths join.
struct Fold {
  uint64_t known = 0;  // bitmask over the 64 VM registers
  int64_t val[kMaxRegs] = {};

  bool Known(int r) const { return (known >> r) & 1u; }
  void Set(int r, int64_t v) {
    known |= 1ull << r;
    val[r] = v;
  }
  void Kill(int r) { known &= ~(1ull << r); }
  void Clear() { known = 0; }

  std::string Use(int r) const { return Known(r) ? ImmStr(val[r]) : RegName(r); }
};

// Two's-complement wraparound arithmetic for generation-time folding: identical
// bit results to what the emitted expressions produce on the target.
int64_t WrapAdd(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) + static_cast<uint64_t>(y));
}
int64_t WrapSub(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) - static_cast<uint64_t>(y));
}
int64_t WrapMul(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) * static_cast<uint64_t>(y));
}
int64_t WrapShl(int64_t x, int64_t sh) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) << sh);
}

uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

NativeKernel::~NativeKernel() {
  if (dl_handle != nullptr) dlclose(dl_handle);
}

CodegenCounters GetCodegenCounters() {
  CodegenCounters c;
  c.attempts = g_attempts.load(std::memory_order_relaxed);
  c.generated = g_generated.load(std::memory_order_relaxed);
  c.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  c.compiler_invocations = g_compiler_invocations.load(std::memory_order_relaxed);
  c.compile_failures = g_compile_failures.load(std::memory_order_relaxed);
  c.disk_hits = g_disk_hits.load(std::memory_order_relaxed);
  c.rejected_objects = g_rejected_objects.load(std::memory_order_relaxed);
  c.native_invocations = g_native_invocations.load(std::memory_order_relaxed);
  return c;
}

void ResetCodegenCounters() {
  g_attempts.store(0);
  g_generated.store(0);
  g_fallbacks.store(0);
  g_compiler_invocations.store(0);
  g_compile_failures.store(0);
  g_disk_hits.store(0);
  g_rejected_objects.store(0);
  g_native_invocations.store(0);
}

namespace internal {
void CountCompilerInvocation() { g_compiler_invocations.fetch_add(1); }
void CountCompileFailure() { g_compile_failures.fetch_add(1); }
void CountDiskHit() { g_disk_hits.fetch_add(1); }
void CountRejectedObject() { g_rejected_objects.fetch_add(1); }
void CountCodegenFallback() { g_fallbacks.fetch_add(1); }
}  // namespace internal

CodegenOptions CodegenOptions::FromEnv() {
  CodegenOptions o;
  const char* dir = std::getenv("HETEX_KERNEL_DIR");
  const char* cmd = std::getenv("HETEX_COMPILER_CMD");
  const char* tier2 = std::getenv("HETEX_TIER2");
  if (dir != nullptr) o.kernel_dir = dir;
  if (cmd != nullptr) o.compiler_cmd = cmd;
  // Tier 2 is opt-in: setting a kernel directory enables it, HETEX_TIER2
  // overrides in either direction (so CI can pin it off for pure-tier-1 jobs).
  if (tier2 != nullptr) {
    o.enabled = std::string(tier2) != "0";
  } else {
    o.enabled = dir != nullptr;
  }
  if (const char* cap = std::getenv("HETEX_KERNEL_DIR_MAX_MB")) {
    const long long mb = std::atoll(cap);
    o.max_dir_bytes = mb > 0 ? static_cast<uint64_t>(mb) << 20 : 0;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Source generation
// ---------------------------------------------------------------------------

GenerateResult GenerateSource(const PipelineProgram& program) {
  g_attempts.fetch_add(1, std::memory_order_relaxed);
  GenerateResult res;
  const auto fallback = [&](std::string reason) {
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    HETEX_LOG(Warning) << "codegen fallback for pipeline '" << program.label
                       << "': " << reason;
    res.reason = std::move(reason);
    return res;
  };

  const std::vector<Instr>& code = program.code;
  const int n = static_cast<int>(code.size());
  if (n == 0 || n > 4096) return fallback("program too large");
  if (program.n_input_cols > 64) return fallback("too many input columns");
  if (static_cast<int>(program.input_widths.size()) < program.n_input_cols) {
    return fallback("binding schema unavailable (no input widths)");
  }
  for (int i = 0; i < program.n_input_cols; ++i) {
    if (program.input_widths[i] != 4 && program.input_widths[i] != 8) {
      return fallback("unsupported column width " + S(program.input_widths[i]));
    }
  }

  // Scan: columns loaded, HT slots probed inline, hooks reached, jump targets.
  std::vector<char> is_target(n + 1, 0);
  uint64_t cols_used = 0;
  uint32_t probe_slots = 0;
  bool uses_emit = false, uses_insert = false, uses_groupby = false;
  int emit_sites = 0, bucketed_emits = 0, emit_width = 0;
  for (const Instr& in : code) {
    switch (in.op) {
      case OpCode::kLoadCol:
        if (in.b < 0 || in.b >= program.n_input_cols) {
          return fallback("load of column outside binding schema");
        }
        cols_used |= 1ull << in.b;
        break;
      case OpCode::kJmp:
        if (in.a < 0 || in.a >= n) return fallback("jump target out of range");
        is_target[in.a] = 1;
        break;
      case OpCode::kJmpIfFalse:
      case OpCode::kJmpIfNeg:
        if (in.b < 0 || in.b >= n) return fallback("jump target out of range");
        is_target[in.b] = 1;
        break;
      case OpCode::kHtProbeInit:
      case OpCode::kHtIterNext:
      case OpCode::kHtLoadPayload:
        probe_slots |= 1u << in.c;
        break;
      case OpCode::kEmit:
        uses_emit = true;
        ++emit_sites;
        if (in.d != 0) ++bucketed_emits;
        emit_width = in.b;
        break;
      case OpCode::kHtInsert: uses_insert = true; break;
      case OpCode::kGroupByAgg: uses_groupby = true; break;
      default: break;
    }
  }

  // Batched emit (single-emit shapes, e.g. filter→emit scans): rows accumulate
  // in column-major stack buffers and flush through AppendBatch — one hook
  // crossing and one capacity check per chunk instead of per row. Guarded to
  // exactly one non-bucketed emit of a bounded width so the buffers stay a few
  // KiB of stack; every other shape keeps the per-row hook. AppendBatch is
  // byte- and CostStats-identical to per-row Append, so results don't move.
  constexpr int kEmitBatchRows = 512;
  constexpr int kEmitBatchMaxCols = 8;
  const bool batch_emit = emit_sites == 1 && bucketed_emits == 0 &&
                          emit_width > 0 && emit_width <= kEmitBatchMaxCols;

  std::string out;
  out.reserve(4096 + static_cast<size_t>(n) * 96);
  // No label or other span identity in the text: the source is pure function
  // of the program code + binding schema, so identical spans (and CPU/GPU
  // instantiations of the same span) dedup to a single kernel on disk.
  out +=
      "// HetExchange tier-2 pipeline kernel\n"
      "// Generated by jit::GenerateSource; content-addressed by the kernel\n"
      "// cache — do not edit. Execution contract: identical results and\n"
      "// identical cost counters to the tier-0 interpreter (RunRows).\n"
      "#include <cstdint>\n"
      "#include <cstring>\n"
      "\n"
      "extern \"C\" const unsigned hx_abi_version = " + S(kCodegenAbiVersion) + ";\n"
      "\n"
      "namespace {\n"
      "inline uint64_t hx_mix64(uint64_t k) {\n"
      "  k ^= k >> 33;\n"
      "  k *= 0xFF51AFD7ED558CCDull;\n"
      "  k ^= k >> 33;\n"
      "  k *= 0xC4CEB9FE1A85EC53ull;\n"
      "  k ^= k >> 33;\n"
      "  return k;\n"
      "}\n"
      "typedef void (*hx_emit_fn)(void*, const int64_t*, int, uint64_t*);\n"
      "typedef void (*hx_emit_batch_fn)(void*, const int64_t* const*, int, uint64_t, uint64_t*);\n"
      "typedef void (*hx_insert_fn)(void*, int64_t, const int64_t*);\n"
      "typedef void (*hx_groupby_fn)(void*, int64_t, const int64_t*, int, uint64_t*);\n"
      "}  // namespace\n"
      "\n"
      "extern \"C\" int hx_kernel(\n"
      "    const void* const* cols, void* emit0, void* const* emit_targets,\n"
      "    int64_t n_emit_targets, int64_t* local_accs,\n"
      "    const int64_t* const* ht_heads, const int64_t* const* ht_entries,\n"
      "    const uint64_t* ht_masks, const uint64_t* ht_strides,\n"
      "    void* const* ht_objs, uint64_t* stats,\n"
      "    uint64_t row_begin, uint64_t row_step, uint64_t rows,\n"
      "    int atomic_mode, const void* const* hooks) {\n"
      "  (void)cols; (void)emit0; (void)emit_targets; (void)n_emit_targets;\n"
      "  (void)local_accs; (void)ht_heads; (void)ht_entries; (void)ht_masks;\n"
      "  (void)ht_strides; (void)ht_objs; (void)atomic_mode; (void)hooks;\n";

  // Hoisted bindings: columns, probe-slot raw layout, hook pointers.
  for (int c = 0; c < program.n_input_cols; ++c) {
    if ((cols_used >> c) & 1ull) {
      out += "  const unsigned char* const hx_c" + S(c) +
             " = (const unsigned char*)cols[" + S(c) + "];\n";
    }
  }
  for (int s = 0; s < kMaxHtSlots; ++s) {
    if ((probe_slots >> s) & 1u) {
      out += "  const int64_t* const hx_h" + S(s) + " = ht_heads[" + S(s) + "];\n";
      out += "  const int64_t* const hx_e" + S(s) + " = ht_entries[" + S(s) + "];\n";
      out += "  const uint64_t hx_m" + S(s) + " = ht_masks[" + S(s) + "];\n";
      out += "  const uint64_t hx_s" + S(s) + " = ht_strides[" + S(s) + "];\n";
    }
  }
  if (uses_emit && !batch_emit) {
    out += "  const hx_emit_fn hx_emit = (hx_emit_fn)hooks[" + S(kHookEmit) + "];\n";
  }
  if (batch_emit) {
    out += "  const hx_emit_batch_fn hx_emit_batch = (hx_emit_batch_fn)hooks[" +
           S(kHookEmitBatch) + "];\n";
    for (int c = 0; c < emit_width; ++c) {
      out += "  int64_t hx_eb" + S(c) + "[" + S(kEmitBatchRows) + "];\n";
    }
    out += "  const int64_t* const hx_ebp[" + S(emit_width) + "] = {";
    for (int c = 0; c < emit_width; ++c) out += (c ? ", " : " ") + std::string("hx_eb") + S(c);
    out += " };\n";
    out += "  uint64_t hx_ebn = 0;\n";
  }
  if (uses_insert) {
    out += "  const hx_insert_fn hx_insert = (hx_insert_fn)hooks[" +
           S(kHookHtInsert) + "];\n";
  }
  if (uses_groupby) {
    out += "  const hx_groupby_fn hx_groupby = (hx_groupby_fn)hooks[" +
           S(kHookGroupBy) + "];\n";
  }

  out +=
      "  uint64_t s_tuples = 0, s_ops = 0, s_br = 0, s_bw = 0;\n"
      "  uint64_t s_at = 0, s_near = 0, s_mid = 0, s_far = 0;\n"
      "  int hx_fault = 0;\n";
  // VM registers: zero-initialized once, persistent across tuples — exactly
  // the interpreter's ExecCtx.regs lifetime within one block.
  for (int r = 0; r < program.n_regs; ++r) {
    out += "  int64_t " + RegName(r) + " = 0; (void)" + RegName(r) + ";\n";
  }
  for (int a = 0; a < program.n_local_accs; ++a) {
    out += "  int64_t a" + S(a) + " = local_accs[" + S(a) + "];\n";
  }
  out += "  for (uint64_t hx_row = row_begin; hx_row < rows; hx_row += row_step) {\n";
  out += "    s_tuples += 1;\n";

  Fold fold;
  for (int pc = 0; pc < n; ++pc) {
    if (is_target[pc]) {
      out += "   hx_pc_" + S(pc) + ":;\n";
      fold.Clear();  // paths join here; constant knowledge does not survive
    }
    const Instr& in = code[pc];
    out += "    s_ops += 1;\n";  // every fetched instruction costs one op
    switch (in.op) {
      case OpCode::kConst:
        out += "    " + RegName(in.a) + " = " + ImmStr(in.imm) + ";\n";
        fold.Set(in.a, in.imm);
        break;
      case OpCode::kLoadCol: {
        const uint32_t w = program.input_widths[in.b];
        if (w == 4) {
          out += "    { int32_t hx_t; memcpy(&hx_t, hx_c" + S(in.b) +
                 " + hx_row * 4u, 4); " + RegName(in.a) + " = hx_t; }\n";
        } else {
          out += "    memcpy(&" + RegName(in.a) + ", hx_c" + S(in.b) +
                 " + hx_row * 8u, 8);\n";
        }
        out += "    s_br += " + S(w) + ";\n";
        fold.Kill(in.a);
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul: {
        const char* sym = in.op == OpCode::kAdd ? "+"
                          : in.op == OpCode::kSub ? "-" : "*";
        if (fold.Known(in.b) && fold.Known(in.c)) {
          const int64_t x = fold.val[in.b], y = fold.val[in.c];
          const int64_t v = in.op == OpCode::kAdd   ? WrapAdd(x, y)
                            : in.op == OpCode::kSub ? WrapSub(x, y)
                                                    : WrapMul(x, y);
          out += "    " + RegName(in.a) + " = " + ImmStr(v) + ";\n";
          fold.Set(in.a, v);
        } else {
          out += "    " + RegName(in.a) + " = " + fold.Use(in.b) + " " + sym +
                 " " + fold.Use(in.c) + ";\n";
          fold.Kill(in.a);
        }
        break;
      }
      case OpCode::kDiv: {
        if (fold.Known(in.c) && fold.val[in.c] != 0) {
          const int64_t d = fold.val[in.c];
          if (fold.Known(in.b) && !(fold.val[in.b] == INT64_MIN && d == -1)) {
            const int64_t v = fold.val[in.b] / d;
            out += "    " + RegName(in.a) + " = " + ImmStr(v) + ";\n";
            fold.Set(in.a, v);
          } else {
            // Divisor proven nonzero: the runtime guard folds away entirely.
            out += "    " + RegName(in.a) + " = " + fold.Use(in.b) + " / " +
                   ImmStr(d) + ";\n";
            fold.Kill(in.a);
          }
        } else if (fold.Known(in.c)) {  // divisor proven zero
          out += "    hx_fault = 1; goto hx_done;\n";
          fold.Kill(in.a);
        } else {
          out += "    if (" + RegName(in.c) +
                 " == 0) { hx_fault = 1; goto hx_done; }\n";
          out += "    " + RegName(in.a) + " = " + fold.Use(in.b) + " / " +
                 RegName(in.c) + ";\n";
          fold.Kill(in.a);
        }
        break;
      }
      case OpCode::kShl:
        if (fold.Known(in.b)) {
          const int64_t v = WrapShl(fold.val[in.b], in.imm);
          out += "    " + RegName(in.a) + " = " + ImmStr(v) + ";\n";
          fold.Set(in.a, v);
        } else {
          out += "    " + RegName(in.a) + " = (int64_t)((uint64_t)" +
                 RegName(in.b) + " << " + S(in.imm) + ");\n";
          fold.Kill(in.a);
        }
        break;
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe:
      case OpCode::kCmpEq:
      case OpCode::kCmpNe: {
        const char* sym = in.op == OpCode::kCmpLt   ? "<"
                          : in.op == OpCode::kCmpLe ? "<="
                          : in.op == OpCode::kCmpGt ? ">"
                          : in.op == OpCode::kCmpGe ? ">="
                          : in.op == OpCode::kCmpEq ? "==" : "!=";
        if (fold.Known(in.b) && fold.Known(in.c)) {
          const int64_t x = fold.val[in.b], y = fold.val[in.c];
          const bool v = in.op == OpCode::kCmpLt   ? x < y
                         : in.op == OpCode::kCmpLe ? x <= y
                         : in.op == OpCode::kCmpGt ? x > y
                         : in.op == OpCode::kCmpGe ? x >= y
                         : in.op == OpCode::kCmpEq ? x == y : x != y;
          out += "    " + RegName(in.a) + " = " + S(v ? 1 : 0) + ";\n";
          fold.Set(in.a, v ? 1 : 0);
        } else {
          out += "    " + RegName(in.a) + " = " + fold.Use(in.b) + " " + sym +
                 " " + fold.Use(in.c) + ";\n";
          fold.Kill(in.a);
        }
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        const char* sym = in.op == OpCode::kAnd ? "&&" : "||";
        if (fold.Known(in.b) && fold.Known(in.c)) {
          const bool v = in.op == OpCode::kAnd
                             ? (fold.val[in.b] != 0 && fold.val[in.c] != 0)
                             : (fold.val[in.b] != 0 || fold.val[in.c] != 0);
          out += "    " + RegName(in.a) + " = " + S(v ? 1 : 0) + ";\n";
          fold.Set(in.a, v ? 1 : 0);
        } else {
          out += "    " + RegName(in.a) + " = (" + fold.Use(in.b) +
                 " != 0) " + sym + " (" + fold.Use(in.c) + " != 0);\n";
          fold.Kill(in.a);
        }
        break;
      }
      case OpCode::kNot:
        if (fold.Known(in.b)) {
          const int64_t v = fold.val[in.b] == 0 ? 1 : 0;
          out += "    " + RegName(in.a) + " = " + S(v) + ";\n";
          fold.Set(in.a, v);
        } else {
          out += "    " + RegName(in.a) + " = " + RegName(in.b) + " == 0;\n";
          fold.Kill(in.a);
        }
        break;
      case OpCode::kHash:
        if (fold.Known(in.b)) {
          const int64_t v = static_cast<int64_t>(
              HashMix64(static_cast<uint64_t>(fold.val[in.b])));
          out += "    " + RegName(in.a) + " = " + ImmStr(v) + ";\n";
          fold.Set(in.a, v);
        } else {
          out += "    " + RegName(in.a) + " = (int64_t)hx_mix64((uint64_t)" +
                 RegName(in.b) + ");\n";
          fold.Kill(in.a);
        }
        break;
      case OpCode::kFilter:
        if (fold.Known(in.a)) {
          // Constant filter folds away; its one-op fetch cost was kept above.
          if (fold.val[in.a] == 0) out += "    goto hx_next;\n";
        } else {
          out += "    if (" + RegName(in.a) + " == 0) goto hx_next;\n";
        }
        break;
      case OpCode::kJmp:
        out += "    goto hx_pc_" + S(in.a) + ";\n";
        break;
      case OpCode::kJmpIfFalse:
        if (fold.Known(in.a)) {
          if (fold.val[in.a] == 0) out += "    goto hx_pc_" + S(in.b) + ";\n";
        } else {
          out += "    if (" + RegName(in.a) + " == 0) goto hx_pc_" + S(in.b) +
                 ";\n";
        }
        break;
      case OpCode::kJmpIfNeg:
        if (fold.Known(in.a)) {
          if (fold.val[in.a] < 0) out += "    goto hx_pc_" + S(in.b) + ";\n";
        } else {
          out += "    if (" + RegName(in.a) + " < 0) goto hx_pc_" + S(in.b) +
                 ";\n";
        }
        break;
      case OpCode::kHtInsert: {
        out += "    {";
        if (in.d > 0) {
          out += " int64_t hx_v[" + S(in.d) + "] = {";
          for (int i = 0; i < in.d; ++i) {
            out += (i ? ", " : " ") + RegName(in.c + i);
          }
          out += " };";
          out += " hx_insert(ht_objs[" + S(in.a) + "], " + fold.Use(in.b) +
                 ", hx_v);";
        } else {
          out += " hx_insert(ht_objs[" + S(in.a) + "], " + fold.Use(in.b) +
                 ", (const int64_t*)0);";
        }
        out += " }\n";
        out += std::string("    ") + ClsCounter(in.cls) + " += 1;\n";
        out += "    s_at += (uint64_t)(atomic_mode != 0);\n";
        out += "    s_bw += " + S((2 + in.d) * 8) + ";\n";
        break;
      }
      case OpCode::kHtProbeInit: {
        const std::string s = S(in.c);
        out += "    { const int64_t hx_k = " + fold.Use(in.b) + ";\n";
        out += "      const uint64_t hx_b = hx_mix64((uint64_t)hx_k) & hx_m" +
               s + ";\n";
        out += "      int64_t hx_e = __atomic_load_n(&hx_h" + s +
               "[hx_b], __ATOMIC_ACQUIRE);\n";
        out += "      uint64_t hx_hops = 0;\n";
        out += "      while (hx_e >= 0) {\n";
        out += "        const int64_t* hx_p = hx_e" + s +
               " + (uint64_t)hx_e * hx_s" + s + ";\n";
        out += "        hx_hops += 1;\n";
        out += "        if (hx_p[0] == hx_k) break;\n";
        out += "        hx_e = hx_p[1];\n";
        out += "      }\n";
        out += "      " + RegName(in.a) + " = hx_e;\n";
        out += std::string("      ") + ClsCounter(in.cls) +
               " += 1 + hx_hops; }\n";
        fold.Kill(in.a);
        break;
      }
      case OpCode::kHtIterNext: {
        const std::string s = S(in.c);
        out += "    { const int64_t hx_k = " + fold.Use(in.b) + ";\n";
        out += "      int64_t hx_e = hx_e" + s + "[(uint64_t)" +
               fold.Use(in.a) + " * hx_s" + s + " + 1];\n";
        out += "      uint64_t hx_hops = 0;\n";
        out += "      while (hx_e >= 0) {\n";
        out += "        const int64_t* hx_p = hx_e" + s +
               " + (uint64_t)hx_e * hx_s" + s + ";\n";
        out += "        hx_hops += 1;\n";
        out += "        if (hx_p[0] == hx_k) break;\n";
        out += "        hx_e = hx_p[1];\n";
        out += "      }\n";
        out += "      " + RegName(in.a) + " = hx_e;\n";
        out += std::string("      ") + ClsCounter(in.cls) + " += hx_hops; }\n";
        fold.Kill(in.a);
        break;
      }
      case OpCode::kHtLoadPayload: {
        const std::string s = S(in.c);
        out += "    { const int64_t* hx_p = hx_e" + s + " + (uint64_t)" +
               fold.Use(in.b) + " * hx_s" + s + " + 2;\n";
        for (int i = 0; i < in.d; ++i) {
          out += "      " + RegName(in.a + i) + " = hx_p[" + S(i) + "];\n";
          fold.Kill(in.a + i);
        }
        out += "    }\n";
        break;
      }
      case OpCode::kAggLocal: {
        const std::string acc = "a" + S(in.a);
        switch (static_cast<AggFunc>(in.c)) {
          case AggFunc::kSum:
            out += "    " + acc + " += " + fold.Use(in.b) + ";\n";
            break;
          case AggFunc::kCount:
            out += "    " + acc + " += 1;\n";
            break;
          case AggFunc::kMin:
            out += "    { const int64_t hx_t = " + fold.Use(in.b) + "; if (hx_t < " +
                   acc + ") " + acc + " = hx_t; }\n";
            break;
          case AggFunc::kMax:
            out += "    { const int64_t hx_t = " + fold.Use(in.b) + "; if (hx_t > " +
                   acc + ") " + acc + " = hx_t; }\n";
            break;
        }
        break;
      }
      case OpCode::kGroupByAgg: {
        out += "    { int64_t hx_v[" + S(in.d > 0 ? in.d : 1) + "] = {";
        for (int i = 0; i < in.d; ++i) out += (i ? ", " : " ") + RegName(in.c + i);
        out += " };\n";
        out += "      uint64_t hx_pr = 0;\n";
        out += "      hx_groupby(ht_objs[" + S(in.a) + "], " + fold.Use(in.b) +
               ", hx_v, atomic_mode, &hx_pr);\n";
        out += std::string("      ") + ClsCounter(in.cls) + " += hx_pr; }\n";
        out += "    s_at += (uint64_t)(atomic_mode != 0) * " + S(in.d) + ";\n";
        break;
      }
      case OpCode::kEmit: {
        if (batch_emit) {
          out += "    {";
          for (int i = 0; i < in.b; ++i) {
            out += " hx_eb" + S(i) + "[hx_ebn] = " + RegName(in.a + i) + ";";
          }
          out += " hx_ebn += 1;\n";
          out += "      if (hx_ebn == " + S(kEmitBatchRows) +
                 ") { hx_emit_batch(emit0, hx_ebp, " + S(in.b) +
                 ", hx_ebn, &s_bw); hx_ebn = 0; } }\n";
          break;
        }
        out += "    {";
        if (in.b > 0) {
          out += " int64_t hx_v[" + S(in.b) + "] = {";
          for (int i = 0; i < in.b; ++i) out += (i ? ", " : " ") + RegName(in.a + i);
          out += " };";
        }
        const std::string vals = in.b > 0 ? "hx_v" : "(const int64_t*)0";
        if (in.d != 0) {
          out += " hx_emit(emit_targets[(uint64_t)" + fold.Use(in.c) +
                 " % (uint64_t)n_emit_targets], " + vals + ", " + S(in.b) +
                 ", &s_bw);";
        } else {
          out += " hx_emit(emit0, " + vals + ", " + S(in.b) + ", &s_bw);";
        }
        out += " }\n";
        break;
      }
      case OpCode::kEnd:
        out += "    goto hx_next;\n";
        break;
    }
  }

  out +=
      "   hx_next:;\n"
      "  }\n"
      " hx_done:\n";
  if (batch_emit) {
    // Drain the partial chunk on every exit — normal completion and the fault
    // path both land here, and the interpreter had already emitted these rows.
    out += "  if (hx_ebn != 0) { hx_emit_batch(emit0, hx_ebp, " +
           S(emit_width) + ", hx_ebn, &s_bw); hx_ebn = 0; }\n";
  }
  for (int a = 0; a < program.n_local_accs; ++a) {
    out += "  local_accs[" + S(a) + "] = a" + S(a) + ";\n";
  }
  out += "  stats[" + S(kStatTuples) + "] += s_tuples;\n";
  out += "  stats[" + S(kStatOps) + "] += s_ops;\n";
  out += "  stats[" + S(kStatBytesRead) + "] += s_br;\n";
  out += "  stats[" + S(kStatBytesWritten) + "] += s_bw;\n";
  out += "  stats[" + S(kStatAtomics) + "] += s_at;\n";
  out += "  stats[" + S(kStatNear) + "] += s_near;\n";
  out += "  stats[" + S(kStatMid) + "] += s_mid;\n";
  out += "  stats[" + S(kStatFar) + "] += s_far;\n";
  out += "  return hx_fault;\n}\n";

  g_generated.fetch_add(1, std::memory_order_relaxed);
  res.source = std::move(out);
  res.signature = HashBytes(res.source.data(), res.source.size());
  res.join_slot_mask = probe_slots;
  return res;
}

// ---------------------------------------------------------------------------
// Native execution
// ---------------------------------------------------------------------------

Status RunNative(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows) {
  const NativeKernel* kernel = program.native.get();
  HETEX_CHECK(kernel != nullptr && kernel->fn != nullptr)
      << "RunNative on pipeline '" << program.label << "' without a ready kernel";

  const void* cols[64] = {};
  if (ctx.n_cols < program.n_input_cols) {
    return Status::Internal("native kernel '" + program.label + "': " +
                            std::to_string(ctx.n_cols) + " columns bound, " +
                            std::to_string(program.n_input_cols) + " compiled");
  }
  for (int i = 0; i < program.n_input_cols; ++i) {
    if (ctx.cols[i].width != program.input_widths[i]) {
      return Status::Internal(
          "native kernel '" + program.label + "': column " + std::to_string(i) +
          " bound with width " + std::to_string(ctx.cols[i].width) +
          ", compiled for " + std::to_string(program.input_widths[i]));
    }
    cols[i] = ctx.cols[i].base;
  }

  static_assert(sizeof(std::atomic<int64_t>) == sizeof(int64_t) &&
                    std::atomic<int64_t>::is_always_lock_free,
                "bucket heads must be bit-compatible with a plain int64 array");
  const int64_t* heads[kMaxHtSlots] = {};
  const int64_t* entries[kMaxHtSlots] = {};
  uint64_t masks[kMaxHtSlots] = {};
  uint64_t strides[kMaxHtSlots] = {};
  for (int s = 0; s < kMaxHtSlots; ++s) {
    if ((kernel->join_slot_mask >> s) & 1u) {
      const auto* ht = static_cast<const JoinHashTable*>(ctx.ht_slots[s]);
      heads[s] = reinterpret_cast<const int64_t*>(ht->raw_heads());
      entries[s] = ht->raw_entries();
      masks[s] = ht->bucket_mask();
      strides[s] = ht->stride();
    }
  }

  uint64_t s[kStatCount] = {};
  const int rc = kernel->fn(
      cols, ctx.emit, reinterpret_cast<void* const*>(ctx.emit_targets),
      ctx.n_emit_targets, ctx.local_accs, heads, entries, masks, strides,
      ctx.ht_slots, s, ctx.row_begin, ctx.row_step, rows,
      ctx.atomic_group_update ? 1 : 0, kHookTable);
  g_native_invocations.fetch_add(1, std::memory_order_relaxed);

  ctx.stats->tuples += s[kStatTuples];
  ctx.stats->ops += s[kStatOps];
  ctx.stats->bytes_read += s[kStatBytesRead];
  ctx.stats->bytes_written += s[kStatBytesWritten];
  ctx.stats->atomics += s[kStatAtomics];
  ctx.stats->near_accesses += s[kStatNear];
  ctx.stats->mid_accesses += s[kStatMid];
  ctx.stats->far_accesses += s[kStatFar];

  if (rc != 0) {
    return Status::Internal("division by zero in pipeline '" + program.label +
                            "'");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Live tier reporting (declared in jit/program.h; lives here because it needs
// NativeKernel's definition)
// ---------------------------------------------------------------------------

ExecTier PipelineProgram::EffectiveTier() const {
  if (native != nullptr && native->ready()) return ExecTier::kNative;
  if (tier == ExecTier::kNative) {
    return vec != nullptr ? ExecTier::kVectorized : ExecTier::kInterpreter;
  }
  return tier;
}

std::string PipelineProgram::EffectiveTierReason() const {
  if (native != nullptr) {
    if (native->ready()) {
      return native->origin == NativeKernel::Origin::kDisk
                 ? "native (kernel cache disk hit)"
                 : "native (jit-compiled)";
    }
    if (native->failed()) {
      return tier_reason + " [native compile failed: " + native->error + "]";
    }
    return tier_reason + " [native compile pending]";
  }
  return tier_reason;
}

}  // namespace hetex::jit
