#ifndef HETEX_JIT_EXEC_CTX_H_
#define HETEX_JIT_EXEC_CTX_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "sim/cost_model.h"

namespace hetex::jit {

/// Binding of one input column for the current block: base pointer + element
/// width in bytes (4 or 8). Values are sign-extended into 64-bit VM registers.
struct ColumnBinding {
  const std::byte* base = nullptr;
  uint32_t width = 8;

  int64_t Load(uint64_t row) const {
    if (width == 4) {
      int32_t v;
      std::memcpy(&v, base + row * 4, 4);
      return v;
    }
    int64_t v;
    std::memcpy(&v, base + row * 8, 8);
    return v;
  }
};

/// \brief Columnar output destination of a pipeline's Emit instruction.
///
/// The pack operator installs a fresh block set here; `on_full` (CPU mode) flushes
/// the filled block downstream and installs the next one. GPU kernels append with
/// an atomic cursor into pre-sized output (sized by the launching driver), and the
/// filled block is forwarded after the kernel completes.
///
/// The cursor is split by append mode: the single-threaded CPU path uses a plain
/// cursor (no atomic load+store per row), the GPU path keeps the device-atomic
/// cursor. The vectorized tier appends whole selection batches via AppendBatch,
/// which additionally hoists the capacity check out of the per-row flow.
class EmitTarget {
 public:
  struct Col {
    std::byte* base = nullptr;
    uint32_t width = 8;
  };

  std::vector<Col> cols;
  uint64_t capacity = 0;
  bool atomic_append = false;
  std::function<void()> on_full;  ///< must make room and reset the cursor

  void Append(const int64_t* vals, int n, sim::CostStats* stats) {
    uint64_t idx;
    if (atomic_append) {
      idx = cursor_.fetch_add(1, std::memory_order_relaxed);
      HETEX_CHECK(idx < capacity)
          << "GPU emit overflow: output block undersized (" << capacity << ")";
    } else {
      if (plain_cursor_ == capacity) {
        on_full();
        HETEX_CHECK(plain_cursor_ < capacity)
            << "EmitTarget::on_full did not make room";
      }
      idx = plain_cursor_++;
    }
    uint64_t bytes = 0;
    for (int i = 0; i < n; ++i) {
      Col& c = cols[i];
      if (c.width == 4) {
        const int32_t v = static_cast<int32_t>(vals[i]);
        std::memcpy(c.base + idx * 4, &v, 4);
      } else {
        std::memcpy(c.base + idx * 8, &vals[i], 8);
      }
      bytes += c.width;
    }
    stats->bytes_written += bytes;
  }

  /// \brief Batch append of the vectorized tier: `n` rows gathered from
  /// lane-major register arrays (`vals[c]` holds output column c) through the
  /// selection vector `sel` (null = the identity selection, lanes [0, n)).
  ///
  /// Produces byte-identical output and identical `CostStats` to `n` Append
  /// calls in `sel` order — including the `on_full` flush boundaries — but pays
  /// the capacity check once per filled chunk instead of once per row.
  void AppendBatch(const int64_t* const* vals, int n_vals, const int32_t* sel,
                   uint64_t n, sim::CostStats* stats) {
    uint64_t row_bytes = 0;
    for (int c = 0; c < n_vals; ++c) row_bytes += cols[c].width;
    uint64_t done = 0;
    while (done < n) {
      uint64_t idx, take;
      if (atomic_append) {
        take = n - done;
        idx = cursor_.fetch_add(take, std::memory_order_relaxed);
        HETEX_CHECK(idx + take <= capacity)
            << "GPU emit overflow: output block undersized (" << capacity << ")";
      } else {
        if (plain_cursor_ == capacity) {
          on_full();
          HETEX_CHECK(plain_cursor_ < capacity)
              << "EmitTarget::on_full did not make room";
        }
        take = n - done;
        if (take > capacity - plain_cursor_) take = capacity - plain_cursor_;
        idx = plain_cursor_;
        plain_cursor_ += take;
      }
      // `cols` is re-read each chunk: on_full may install a fresh block set.
      for (int c = 0; c < n_vals; ++c) {
        const int64_t* src = vals[c];
        Col& col = cols[c];
        if (col.width == 4) {
          if (sel == nullptr) {
            for (uint64_t r = 0; r < take; ++r) {
              const int32_t v = static_cast<int32_t>(src[done + r]);
              std::memcpy(col.base + (idx + r) * 4, &v, 4);
            }
          } else {
            for (uint64_t r = 0; r < take; ++r) {
              const int32_t v = static_cast<int32_t>(src[sel[done + r]]);
              std::memcpy(col.base + (idx + r) * 4, &v, 4);
            }
          }
        } else {
          if (sel == nullptr) {
            for (uint64_t r = 0; r < take; ++r) {
              std::memcpy(col.base + (idx + r) * 8, &src[done + r], 8);
            }
          } else {
            for (uint64_t r = 0; r < take; ++r) {
              std::memcpy(col.base + (idx + r) * 8, &src[sel[done + r]], 8);
            }
          }
        }
      }
      stats->bytes_written += row_bytes * take;
      done += take;
    }
  }

  uint64_t rows() const {
    return atomic_append ? cursor_.load(std::memory_order_relaxed)
                         : plain_cursor_;
  }
  void ResetCursor() {
    cursor_.store(0, std::memory_order_relaxed);
    plain_cursor_ = 0;
  }

 private:
  std::atomic<uint64_t> cursor_{0};
  uint64_t plain_cursor_ = 0;
};

/// \brief Per-execution context handed to the interpreter.
///
/// On the CPU a pipeline instance owns one ExecCtx and iterates rows [0, rows)
/// with step 1; on the GPU each logical kernel thread gets its own ExecCtx with a
/// grid-stride (row_begin = threadId, row_step = gridSize) — the values
/// `threadIdInWorker` / `#threadsInWorker` resolve to per the paper's providers.
struct ExecCtx {
  int64_t regs[64] = {};
  const ColumnBinding* cols = nullptr;
  int n_cols = 0;
  EmitTarget* emit = nullptr;          ///< single-target emit (bucket 0)
  EmitTarget** emit_targets = nullptr; ///< hash-pack buckets (tagged emits)
  int n_emit_targets = 0;
  int64_t* local_accs = nullptr;   ///< accumulator area (instance- or thread-local)
  void** ht_slots = nullptr;       ///< JoinHashTable* / AggHashTable* per slot
  sim::CostStats* stats = nullptr;
  uint64_t row_begin = 0;
  uint64_t row_step = 1;
  bool atomic_group_update = false;  ///< GPU: agg-HT folds must be atomic
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_EXEC_CTX_H_
