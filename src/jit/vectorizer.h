#ifndef HETEX_JIT_VECTORIZER_H_
#define HETEX_JIT_VECTORIZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "jit/exec_ctx.h"
#include "jit/program.h"

namespace hetex::jit {

/// Rows per vectorized batch. Large enough to amortize per-primitive dispatch,
/// small enough that a batch's register file stays cache-resident.
inline constexpr int kVecBatchRows = 1024;

/// \brief One primitive of a vectorized pipeline: a straight-line instruction
/// executed over a whole selection at once, or a nested probe loop.
///
/// Primitives keep the original `Instr` so operand decoding (and the cost-model
/// size class) is shared with the row interpreter — the vectorizer only changes
/// the execution granularity, never the semantics.
struct VecStep {
  enum class Kind : uint8_t {
    kConst,
    kLoadCol,    ///< width branch hoisted to one per batch
    kBin,        ///< add/sub/mul/div/shl/cmp*/and/or — fused per-batch loop
    kNot,
    kHash,
    kFilter,     ///< shrinks the selection vector
    kHtInsert,
    kHtLoadPayload,
    kAggLocal,
    kGroupByAgg,
    kEmit,       ///< batched append (bucket-partitioned when hash-packed)
    kLoop,       ///< match-list-expanding probe loop (see VecLoop)
  };

  Kind kind;
  Instr in;           ///< original instruction (operands, imm, size class)
  int loop_idx = -1;  ///< kLoop: index into VectorProgram::loops
};

/// \brief A probe loop lowered to match-list expansion.
///
/// The row interpreter iterates `kHtProbeInit / kJmpIfNeg / body / kHtIterNext /
/// kJmp` per tuple; the vectorized tier instead walks each selected lane's whole
/// bucket chain once, expanding the matches into a child lane set (in lane-major
/// order, preserving the interpreter's tuple-major processing order), and then
/// runs the body primitives over the expanded lanes.
struct VecLoop {
  Instr probe;      ///< the kHtProbeInit (a=iter reg, b=key reg, c=ht slot, cls)
  Instr iter_next;  ///< the kHtIterNext (kept for operand/accounting checks)
  std::vector<VecStep> body;
  /// Registers the body reads before writing (copied into the expanded lanes).
  std::vector<int16_t> live_in;
  /// True when something after the loop reads the iterator register (the
  /// expansion must then materialize the interpreter's exhausted -1).
  bool iter_read_after = false;
  /// True when the body subtree loads input columns (the expansion must then
  /// carry original row numbers into the child lanes).
  bool needs_rows = false;
};

/// \brief A pipeline program lowered to the vectorized batch tier.
struct VectorProgram {
  std::vector<VecStep> top;
  std::vector<VecLoop> loops;
  int n_regs = 0;
  int max_loop_depth = 0;  ///< nesting depth (sizes the per-depth lane states)
};

/// Result of a vectorization attempt: either the lowered program, or the reason
/// the program shape could not be proven vectorizable (fallback is never
/// silent — the caller logs it and the counters below record it).
struct VectorizeResult {
  std::shared_ptr<const VectorProgram> program;  ///< null on fallback
  std::string reason;                            ///< fallback reason when null
};

/// \brief Attempts to lower a validated pipeline program to vector primitives.
///
/// Handles the shapes the query compiler generates: straight-line code with
/// filters, plus the canonical probe-loop idiom (including nesting). Any other
/// control flow — stray jumps, filters inside probe loops, registers written in
/// a loop body and read after it — makes the program fall back to the row
/// interpreter.
VectorizeResult TryVectorize(const PipelineProgram& program);

/// Executes a vectorized program over rows [ctx.row_begin, rows) with stride
/// ctx.row_step. Produces identical results and identical CostStats to
/// RunRows() on the same program; returns a runtime error (e.g. division by
/// zero) instead of invoking UB.
Status RunRowsVectorized(const PipelineProgram& program, ExecCtx& ctx,
                         uint64_t rows);

/// Process-wide vectorizer telemetry (attempts/fallbacks are per
/// ConvertToMachineCode call; Reset is for tests).
struct VectorizerCounters {
  uint64_t attempts = 0;
  uint64_t vectorized = 0;
  uint64_t fallbacks = 0;
};
VectorizerCounters GetVectorizerCounters();
void ResetVectorizerCounters();

}  // namespace hetex::jit

#endif  // HETEX_JIT_VECTORIZER_H_
