#ifndef HETEX_JIT_INTERPRETER_H_
#define HETEX_JIT_INTERPRETER_H_

#include <cstdint>

#include "common/status.h"
#include "jit/exec_ctx.h"
#include "jit/program.h"

namespace hetex::jit {

/// \brief Executes a fused pipeline program over rows [row_begin, rows) with
/// stride row_step of the currently bound input block (tier 0: row interpreter).
///
/// This is the "generated code": one tight dispatch loop per tuple, all
/// intermediates in registers, no materialization between fused operators. Cost
/// counters (tuples, micro-ops, random accesses by size class, atomics, bytes)
/// are accumulated into ctx.stats as a side effect of execution, which is what
/// drives the virtual-time model.
///
/// Returns a runtime error (instead of invoking UB) on a zero divisor; counters
/// accumulated up to the fault are still applied.
Status RunRows(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows);

/// Tier dispatch: runs a finalized program through the execution tier
/// ConvertToMachineCode installed on it (the vectorized batch backend when the
/// program's shape was proven, the row interpreter otherwise). Both tiers
/// produce identical results and identical CostStats.
Status Run(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows);

/// Folds per-thread local accumulators into shared (device-resident) accumulators
/// with worker-scoped atomics — the tail of the paper's Listing 1 pipeline 9
/// (neighborhood reduce + leader atomic). `count_atomic_cost` is true for the
/// neighborhood leader only, modeling the warp-level reduction's cost profile.
void FlushLocalAccsAtomic(const PipelineProgram& program, const int64_t* local_accs,
                          std::atomic<int64_t>* shared_accs, bool count_atomic_cost,
                          sim::CostStats* stats);

}  // namespace hetex::jit

#endif  // HETEX_JIT_INTERPRETER_H_
