#ifndef HETEX_JIT_KERNEL_CACHE_H_
#define HETEX_JIT_KERNEL_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "jit/codegen.h"
#include "sim/fault.h"

namespace hetex::jit {

/// \brief Compiles generated tier-2 sources out of process and keeps the
/// resulting shared objects — in memory for this process, and on disk across
/// processes.
///
/// Layout of the kernel directory (one triple per kernel signature):
///   hx_<sig>.cc    the generated translation unit (content-addressed: <sig>
///                  is the FNV-1a hash of this exact text)
///   hx_<sig>.so    the compiled shared object
///   hx_<sig>.meta  verification sidecar: ABI version, source hash/size,
///                  object hash/size
///   hx_<sig>.log   compiler stderr of the last build (diagnostics only)
///
/// A load from disk re-verifies everything against the source the engine just
/// generated: ABI version, source hash, object size and object hash. Stale,
/// truncated or corrupted objects are rejected (counted) and recompiled —
/// never loaded. On a warm directory a fresh process therefore installs every
/// kernel with zero compiler invocations.
///
/// Compilation runs on a small background pool (async mode): GetOrBuild
/// returns a pending NativeKernel immediately, the program serves its fallback
/// tier, and the worker publishes the ready state when the object is loaded —
/// first-query latency never blocks on the compiler. Requests for the same
/// signature coalesce onto one in-flight compile.
class KernelCache {
 public:
  /// Per-cache accounting. `disk_hits` vs `in_process_hits` vs `compiles` is
  /// what makes restart reuse observable instead of inferred.
  struct Counters {
    uint64_t requests = 0;
    uint64_t in_process_hits = 0;      ///< signature already resident
    uint64_t disk_hits = 0;            ///< loaded from the kernel dir, no compile
    uint64_t compiles = 0;             ///< build jobs actually run
    uint64_t compiler_invocations = 0; ///< out-of-process compiler executions
    uint64_t compile_failures = 0;     ///< compiler/dlopen failures
    uint64_t rejected_objects = 0;     ///< stale/corrupt objects refused by verify
    uint64_t evictions = 0;            ///< kernel triples removed by the size cap
  };

  explicit KernelCache(CodegenOptions options);
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  const CodegenOptions& options() const { return options_; }

  /// Returns the kernel for a generated source, starting a build if this is
  /// the first time the signature is seen. The result may still be pending
  /// (async mode); callers poll `ready()` — programs do so implicitly via
  /// Run()'s tier-up check. Never returns null.
  std::shared_ptr<NativeKernel> GetOrBuild(const GenerateResult& gen,
                                           const std::string& label);

  /// Blocks until no build is queued or running (tests and benchmarks).
  void WaitIdle();

  /// Attaches the System's fault plane: Build() then draws injected compile
  /// failures (the kernel fails closed to its fallback tier, counted like a
  /// real compiler failure — never query-fatal). Null / disabled = no checks.
  void set_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }

  Counters counters() const;

 private:
  struct Entry {
    std::string source;  ///< full text — signature collisions chain, never alias
    std::shared_ptr<NativeKernel> kernel;
  };

  void Build(const std::shared_ptr<NativeKernel>& kernel,
             const std::string& source);
  bool TryLoadFromDisk(NativeKernel* kernel, const std::string& source);
  bool CompileToDisk(NativeKernel* kernel, const std::string& source);
  bool LoadObject(NativeKernel* kernel, const std::string& so_path,
                  std::string* error);
  std::string Stem(uint64_t signature) const;
  /// Enforces CodegenOptions::max_dir_bytes on the kernel directory after a
  /// compile lands: evicts whole hx_* triples, least-recently-built first (.so
  /// mtime), never the just-written `protect_stem`. An evicted kernel that is
  /// still loaded in some process keeps running (dlopen holds the mapping);
  /// the next process simply recompiles it.
  void EvictIfNeeded(const std::string& protect_stem);
  void WorkerLoop();

  CodegenOptions options_;
  sim::FaultInjector* fault_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<Entry>> entries_;
  Counters counters_;
  std::deque<std::function<void()>> queue_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  int inflight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_KERNEL_CACHE_H_
