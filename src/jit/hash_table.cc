#include "jit/hash_table.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace hetex::jit {

namespace {
uint64_t NextPow2(uint64_t v) {
  if (v < 2) return 2;
  return std::bit_ceil(v);
}
}  // namespace

JoinHashTable::JoinHashTable(memory::MemoryManager* mm, uint64_t capacity,
                             int payload_width)
    : mm_(mm),
      capacity_(capacity == 0 ? 1 : capacity),
      payload_width_(payload_width),
      stride_(2 + static_cast<uint64_t>(payload_width)) {
  const uint64_t buckets = NextPow2(capacity_ * 2);
  bucket_mask_ = buckets - 1;
  const uint64_t head_bytes = buckets * sizeof(std::atomic<int64_t>);
  const uint64_t entry_bytes = capacity_ * stride_ * sizeof(int64_t);
  bytes_ = head_bytes + entry_bytes;
  auto alloc = mm_->Allocate(bytes_);
  HETEX_CHECK(alloc.ok()) << "join hash table allocation: "
                          << alloc.status().ToString();
  raw_ = alloc.value();
  heads_ = static_cast<std::atomic<int64_t>*>(raw_);
  for (uint64_t i = 0; i < buckets; ++i) {
    heads_[i].store(-1, std::memory_order_relaxed);
  }
  entries_ = reinterpret_cast<int64_t*>(static_cast<std::byte*>(raw_) + head_bytes);
}

JoinHashTable::~JoinHashTable() { mm_->Free(raw_); }

void JoinHashTable::Insert(int64_t key, const int64_t* payload) {
  const uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  HETEX_CHECK(idx < capacity_) << "join hash table over capacity (" << capacity_
                               << ")";
  int64_t* e = EntryAt(static_cast<int64_t>(idx));
  e[0] = key;
  for (int i = 0; i < payload_width_; ++i) e[2 + i] = payload[i];
  const uint64_t b = HashMix64(static_cast<uint64_t>(key)) & bucket_mask_;
  int64_t head = heads_[b].load(std::memory_order_relaxed);
  do {
    e[1] = head;
  } while (!heads_[b].compare_exchange_weak(head, static_cast<int64_t>(idx),
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
}

AggHashTable::AggHashTable(memory::MemoryManager* mm, uint64_t capacity, int n_aggs,
                           const AggFunc* funcs)
    : mm_(mm), n_aggs_(n_aggs) {
  HETEX_CHECK(n_aggs >= 1 && n_aggs <= 8);
  slots_ = NextPow2((capacity == 0 ? 1 : capacity) * 2);
  slot_mask_ = slots_ - 1;
  for (int i = 0; i < n_aggs; ++i) funcs_[i] = funcs[i];

  const uint64_t key_bytes = slots_ * sizeof(std::atomic<int64_t>);
  const uint64_t acc_bytes = slots_ * n_aggs_ * sizeof(int64_t);
  bytes_ = key_bytes + acc_bytes;
  auto keys_alloc = mm_->Allocate(key_bytes);
  HETEX_CHECK(keys_alloc.ok()) << keys_alloc.status().ToString();
  raw_keys_ = keys_alloc.value();
  auto accs_alloc = mm_->Allocate(acc_bytes);
  HETEX_CHECK(accs_alloc.ok()) << accs_alloc.status().ToString();
  raw_accs_ = accs_alloc.value();

  keys_ = static_cast<std::atomic<int64_t>*>(raw_keys_);
  accs_ = static_cast<int64_t*>(raw_accs_);
  for (uint64_t i = 0; i < slots_; ++i) {
    keys_[i].store(kEmpty, std::memory_order_relaxed);
    for (int a = 0; a < n_aggs_; ++a) {
      accs_[i * n_aggs_ + a] = AggIdentity(funcs_[a]);
    }
  }
}

AggHashTable::~AggHashTable() {
  mm_->Free(raw_keys_);
  mm_->Free(raw_accs_);
}

void AggHashTable::Update(int64_t key, const int64_t* vals, bool atomic,
                          uint64_t* probes) {
  HETEX_CHECK(key != kEmpty) << "reserved group key";
  uint64_t slot = HashMix64(static_cast<uint64_t>(key)) & slot_mask_;
  while (true) {
    ++*probes;
    int64_t cur = keys_[slot].load(std::memory_order_acquire);
    if (cur == key) break;
    if (cur == kEmpty) {
      int64_t expected = kEmpty;
      if (keys_[slot].compare_exchange_strong(expected, key,
                                              std::memory_order_acq_rel)) {
        const uint64_t n = used_.fetch_add(1, std::memory_order_relaxed) + 1;
        HETEX_CHECK(n * 2 <= slots_) << "agg hash table over capacity";
        break;
      }
      if (expected == key) break;  // lost the race to the same key
    }
    slot = (slot + 1) & slot_mask_;
  }
  int64_t* acc = accs_ + slot * n_aggs_;
  if (atomic) {
    auto* atomic_acc = reinterpret_cast<std::atomic<int64_t>*>(acc);
    for (int a = 0; a < n_aggs_; ++a) AggApplyAtomic(funcs_[a], atomic_acc + a, vals[a]);
  } else {
    for (int a = 0; a < n_aggs_; ++a) AggApply(funcs_[a], acc + a, vals[a]);
  }
}

}  // namespace hetex::jit
