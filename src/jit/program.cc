#include "jit/program.h"

#include <sstream>

namespace hetex::jit {

namespace {
const char* OpName(OpCode op) {
  switch (op) {
    case OpCode::kConst: return "const";
    case OpCode::kLoadCol: return "load_col";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kDiv: return "div";
    case OpCode::kShl: return "shl";
    case OpCode::kCmpLt: return "cmp_lt";
    case OpCode::kCmpLe: return "cmp_le";
    case OpCode::kCmpGt: return "cmp_gt";
    case OpCode::kCmpGe: return "cmp_ge";
    case OpCode::kCmpEq: return "cmp_eq";
    case OpCode::kCmpNe: return "cmp_ne";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
    case OpCode::kNot: return "not";
    case OpCode::kHash: return "hash";
    case OpCode::kFilter: return "filter";
    case OpCode::kJmp: return "jmp";
    case OpCode::kJmpIfFalse: return "jmp_if_false";
    case OpCode::kJmpIfNeg: return "jmp_if_neg";
    case OpCode::kHtInsert: return "ht_insert";
    case OpCode::kHtProbeInit: return "ht_probe_init";
    case OpCode::kHtIterNext: return "ht_iter_next";
    case OpCode::kHtLoadPayload: return "ht_load_payload";
    case OpCode::kAggLocal: return "agg_local";
    case OpCode::kGroupByAgg: return "group_by_agg";
    case OpCode::kEmit: return "emit";
    case OpCode::kEnd: return "end";
  }
  return "?";
}

bool IsJump(OpCode op) {
  return op == OpCode::kJmp || op == OpCode::kJmpIfFalse || op == OpCode::kJmpIfNeg;
}
}  // namespace

std::string PipelineProgram::ToString() const {
  std::ostringstream os;
  os << "pipeline '" << label << "' (" << n_regs << " regs, " << n_local_accs
     << " accs)\n";
  int pc = 0;
  for (const Instr& i : code) {
    os << "  " << pc++ << ": " << OpName(i.op) << " a=" << i.a << " b=" << i.b
       << " c=" << i.c << " d=" << i.d;
    if (i.imm != 0) os << " imm=" << i.imm;
    if (i.cls != 0) os << " cls=" << static_cast<int>(i.cls);
    os << "\n";
  }
  return os.str();
}

PipelineProgram ProgramBuilder::Finalize(std::string label_text) {
  // Ensure the tuple program terminates.
  if (code_.empty() || code_.back().op != OpCode::kEnd) {
    EmitOp(OpCode::kEnd);
  }
  // Patch label operands: kJmp target in `a`, conditional targets in `b`.
  for (Instr& instr : code_) {
    if (!IsJump(instr.op)) continue;
    int16_t& target = instr.op == OpCode::kJmp ? instr.a : instr.b;
    const int label = target;
    HETEX_CHECK(label >= 0 && label < static_cast<int>(labels_.size()))
        << "jump to unknown label " << label;
    HETEX_CHECK(labels_[label] >= 0) << "jump to unbound label " << label;
    target = static_cast<int16_t>(labels_[label]);
  }
  PipelineProgram program;
  program.code = std::move(code_);
  program.n_regs = next_reg_;
  program.n_local_accs = n_local_accs_;
  for (int i = 0; i < n_local_accs_; ++i) program.local_acc_funcs[i] = local_funcs_[i];
  program.label = std::move(label_text);
  return program;
}

}  // namespace hetex::jit
