#ifndef HETEX_JIT_PROGRAM_H_
#define HETEX_JIT_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "jit/hash_table.h"

namespace hetex::jit {

/// \brief Instruction set of the pipeline register machine.
///
/// This is the lowering target of the produce()/consume() code generation — the
/// stand-in for LLVM IR in this reproduction (see DESIGN.md §1). A pipeline's
/// operators are fused into one straight-line program executed once per tuple;
/// all intermediate values live in VM registers (register pipelining), and the
/// only materialization points are Emit (into the pipeline's output block) and
/// hash-table state — i.e. the pipeline breakers.
enum class OpCode : uint8_t {
  kConst,       ///< regs[a] = imm
  kLoadCol,     ///< regs[a] = input column b at the current row (width-extended)
  kAdd,         ///< regs[a] = regs[b] + regs[c]
  kSub,         ///< regs[a] = regs[b] - regs[c]
  kMul,         ///< regs[a] = regs[b] * regs[c]
  kDiv,         ///< regs[a] = regs[b] / regs[c]  (c must be nonzero)
  kShl,         ///< regs[a] = regs[b] << imm
  kCmpLt,       ///< regs[a] = regs[b] <  regs[c]
  kCmpLe,       ///< regs[a] = regs[b] <= regs[c]
  kCmpGt,       ///< regs[a] = regs[b] >  regs[c]
  kCmpGe,       ///< regs[a] = regs[b] >= regs[c]
  kCmpEq,       ///< regs[a] = regs[b] == regs[c]
  kCmpNe,       ///< regs[a] = regs[b] != regs[c]
  kAnd,         ///< regs[a] = regs[b] && regs[c]
  kOr,          ///< regs[a] = regs[b] || regs[c]
  kNot,         ///< regs[a] = !regs[b]
  kHash,        ///< regs[a] = HashMix64(regs[b])
  kFilter,      ///< if (!regs[a]) end this tuple
  kJmp,         ///< pc = a (label-resolved)
  kJmpIfFalse,  ///< if (!regs[a]) pc = b
  kJmpIfNeg,    ///< if (regs[a] < 0) pc = b
  kHtInsert,    ///< join HT slot a: insert key regs[b], payload regs[c..c+d)
  kHtProbeInit, ///< regs[a] = first entry matching key regs[b] in join HT slot c
  kHtIterNext,  ///< regs[a] = next entry matching key regs[b] in join HT slot c,
                ///< starting after entry regs[a]
  kHtLoadPayload, ///< regs[a..a+d) = payload of entry regs[b] in join HT slot c
  kAggLocal,    ///< local_accs[a] = func(c)(local_accs[a], regs[b])
  kGroupByAgg,  ///< agg HT slot a: fold regs[c..c+d) into group key regs[b]
  kEmit,        ///< append regs[a..a+b) to the output block
  kEnd,         ///< end of tuple program
};

/// One VM instruction. `cls` carries the random-access size class (0 near / 1 mid /
/// 2 far) for hash-table opcodes, assigned at codegen time from the table's
/// modeled footprint.
struct Instr {
  OpCode op;
  uint8_t cls = 0;
  int16_t a = 0;
  int16_t b = 0;
  int16_t c = 0;
  int16_t d = 0;
  int64_t imm = 0;
};

inline constexpr int kMaxRegs = 64;
inline constexpr int kMaxLocalAccs = 8;
inline constexpr int kMaxHtSlots = 16;

/// \brief Execution tier a finalized program was lowered to.
///
/// `ConvertToMachineCode` is the tiering point: it validates the program,
/// attempts to lower it to the vectorized batch backend, and (when a kernel
/// cache is configured) hands the program to the tier-2 codegen backend, which
/// emits a specialized C++ translation unit, compiles it out of process and
/// dlopens the result. Shapes a backend cannot prove fall back one tier down
/// (tracked and logged, never silent).
enum class ExecTier : uint8_t {
  kInterpreter,  ///< per-tuple switch-dispatch bytecode loop (tier 0)
  kVectorized,   ///< fused batch primitives over selection vectors (tier 1)
  kNative,       ///< JIT-compiled native kernel, dlopen-ed from the kernel cache (tier 2)
};

/// Tier selection policy of a provider (set system-wide; parity suites pin
/// tier 0 / tier 1 to diff them against the auto-tiered run).
enum class TierPolicy : uint8_t { kAuto, kForceInterpreter, kForceVectorized };

struct VectorProgram;  // defined in jit/vectorizer.h
struct NativeKernel;   // defined in jit/codegen.h

/// \brief A fused, device-agnostic pipeline program plus its state metadata.
///
/// The same program is specialized to a device by the DeviceProvider that executes
/// it (grid-stride bounds, atomic vs plain accumulation) — the paper's Fig. 3
/// "same blueprint, two specializations" property.
struct PipelineProgram {
  std::vector<Instr> code;
  int n_regs = 0;
  int n_local_accs = 0;
  AggFunc local_acc_funcs[kMaxLocalAccs] = {};
  int n_input_cols = 0;
  int n_output_cols = 0;
  bool finalized = false;   ///< set by DeviceProvider::ConvertToMachineCode
  std::string label;        ///< for plan/debug printing

  /// Binding schema: byte width of each input column the runtime will bind
  /// positionally. Filled by the ProgramCache (and the uncached processor
  /// path) before finalization; the tier-2 codegen specializes column loads to
  /// these widths, and programs without them fall back with a named reason.
  std::vector<uint32_t> input_widths;

  // Set by ConvertToMachineCode (the tiering point). All tiers produce
  // identical results and identical CostStats; only the harness speed differs.
  ExecTier tier = ExecTier::kInterpreter;
  std::shared_ptr<const VectorProgram> vec;  ///< non-null iff tier == kVectorized
  std::string tier_reason;  ///< finalize-time tier decision + fallback reason

  /// Tier-2 kernel handle (null when codegen is off or fell back). The kernel
  /// may still be compiling in the background: Run() serves `tier` until the
  /// kernel publishes ready, then hot-swaps to the native entry point — the
  /// tier-up never blocks a query on the compiler.
  std::shared_ptr<NativeKernel> native;

  /// The tier execution would dispatch to right now (native once the
  /// background compile has published, the finalize-time tier before that).
  ExecTier EffectiveTier() const;
  /// Human-readable tier line reflecting the live native state.
  std::string EffectiveTierReason() const;

  std::string ToString() const;
};

/// \brief Incremental builder used by operators' consume() implementations.
///
/// Supports forward labels so that codegen can emit probe loops and short-circuit
/// filters the way a real JIT emits basic blocks.
class ProgramBuilder {
 public:
  ProgramBuilder() = default;

  int AllocReg() {
    HETEX_CHECK(next_reg_ < kMaxRegs) << "pipeline uses too many registers";
    return next_reg_++;
  }

  int AllocLocalAcc(AggFunc func) {
    HETEX_CHECK(n_local_accs_ < kMaxLocalAccs);
    local_funcs_[n_local_accs_] = func;
    return n_local_accs_++;
  }

  /// Creates an unbound label; Bind() fixes its position; jumps are patched at
  /// Finalize().
  int NewLabel() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }

  void Bind(int label) {
    HETEX_CHECK(labels_.at(label) == -1) << "label bound twice";
    labels_[label] = static_cast<int>(code_.size());
  }

  /// Emits an instruction; for jump opcodes the target operand holds a label id
  /// until Finalize() patches it.
  void Emit(Instr instr) { code_.push_back(instr); }

  void EmitOp(OpCode op, int a = 0, int b = 0, int c = 0, int d = 0,
              int64_t imm = 0, int cls = 0) {
    Emit(Instr{op, static_cast<uint8_t>(cls), static_cast<int16_t>(a),
               static_cast<int16_t>(b), static_cast<int16_t>(c),
               static_cast<int16_t>(d), imm});
  }

  int pc() const { return static_cast<int>(code_.size()); }

  /// Patches labels and moves the code into a program.
  PipelineProgram Finalize(std::string label_text);

 private:
  std::vector<Instr> code_;
  std::vector<int> labels_;
  int next_reg_ = 0;
  int n_local_accs_ = 0;
  AggFunc local_funcs_[kMaxLocalAccs] = {};
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_PROGRAM_H_
