#include "jit/vectorizer.h"

#include <algorithm>
#include <array>
#include <atomic>

#include "common/hash.h"
#include "common/logging.h"

namespace hetex::jit {

namespace {

std::atomic<uint64_t> g_attempts{0};
std::atomic<uint64_t> g_vectorized{0};
std::atomic<uint64_t> g_fallbacks{0};

/// Bumps the random-access counter matching a size class (same accounting as
/// the row interpreter).
inline void CountAccess(sim::CostStats* stats, uint8_t cls, uint64_t n) {
  switch (cls) {
    case 0: stats->near_accesses += n; break;
    case 1: stats->mid_accesses += n; break;
    default: stats->far_accesses += n; break;
  }
}

bool IsBinOp(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kCmpLt:
    case OpCode::kCmpLe:
    case OpCode::kCmpGt:
    case OpCode::kCmpGe:
    case OpCode::kCmpEq:
    case OpCode::kCmpNe:
    case OpCode::kAnd:
    case OpCode::kOr:
      return true;
    default:
      return false;
  }
}

/// Register reads/writes of one straight-line instruction (for the live-in /
/// poison analysis that decides whether loop expansion is sound).
void ReadsWrites(const Instr& in, std::vector<int16_t>* reads,
                 std::vector<int16_t>* writes) {
  switch (in.op) {
    case OpCode::kConst:
      writes->push_back(in.a);
      break;
    case OpCode::kLoadCol:
      writes->push_back(in.a);
      break;
    case OpCode::kShl:
    case OpCode::kNot:
    case OpCode::kHash:
      reads->push_back(in.b);
      writes->push_back(in.a);
      break;
    case OpCode::kFilter:
      reads->push_back(in.a);
      break;
    case OpCode::kHtInsert:
      reads->push_back(in.b);
      for (int i = 0; i < in.d; ++i) reads->push_back(in.c + i);
      break;
    case OpCode::kHtLoadPayload:
      reads->push_back(in.b);
      for (int i = 0; i < in.d; ++i) writes->push_back(in.a + i);
      break;
    case OpCode::kAggLocal:
      reads->push_back(in.b);
      break;
    case OpCode::kGroupByAgg:
      reads->push_back(in.b);
      for (int i = 0; i < in.d; ++i) reads->push_back(in.c + i);
      break;
    case OpCode::kEmit:
      for (int i = 0; i < in.b; ++i) reads->push_back(in.a + i);
      if (in.d != 0) reads->push_back(in.c);
      break;
    default:
      if (IsBinOp(in.op)) {
        reads->push_back(in.b);
        reads->push_back(in.c);
        writes->push_back(in.a);
      }
      break;
  }
}

VecStep::Kind StepKindOf(OpCode op) {
  switch (op) {
    case OpCode::kConst: return VecStep::Kind::kConst;
    case OpCode::kLoadCol: return VecStep::Kind::kLoadCol;
    case OpCode::kNot: return VecStep::Kind::kNot;
    case OpCode::kHash: return VecStep::Kind::kHash;
    case OpCode::kFilter: return VecStep::Kind::kFilter;
    case OpCode::kHtInsert: return VecStep::Kind::kHtInsert;
    case OpCode::kHtLoadPayload: return VecStep::Kind::kHtLoadPayload;
    case OpCode::kAggLocal: return VecStep::Kind::kAggLocal;
    case OpCode::kGroupByAgg: return VecStep::Kind::kGroupByAgg;
    case OpCode::kEmit: return VecStep::Kind::kEmit;
    default: return VecStep::Kind::kBin;  // kShl + IsBinOp, checked by callers
  }
}

/// \brief Recursive-descent parser over the flat bytecode.
///
/// Straight-line instructions map 1:1 to vector primitives; the canonical probe
/// loop idiom (kHtProbeInit / kJmpIfNeg / body / kHtIterNext / kJmp) parses into
/// a VecLoop. Anything else is a fallback reason, never a silent skip.
class Parser {
 public:
  Parser(const PipelineProgram& p, VectorProgram* vp) : p_(p), vp_(vp) {}

  bool ParseBlock(int begin, int end, int depth, std::vector<VecStep>* out,
                  bool* has_load) {
    vp_->max_loop_depth = std::max(vp_->max_loop_depth, depth);
    int pc = begin;
    while (pc < end) {
      const Instr& in = p_.code[pc];
      switch (in.op) {
        case OpCode::kJmp:
        case OpCode::kJmpIfFalse:
        case OpCode::kJmpIfNeg:
          return Fail("unstructured control flow at pc " + std::to_string(pc));
        case OpCode::kEnd:
          return Fail("kEnd inside the program body at pc " + std::to_string(pc));
        case OpCode::kFilter:
          if (depth > 0) {
            return Fail("filter inside a probe loop at pc " + std::to_string(pc));
          }
          out->push_back({VecStep::Kind::kFilter, in, -1});
          ++pc;
          break;
        case OpCode::kHtProbeInit: {
          if (!ParseLoop(pc, end, depth, out, &pc, has_load)) return false;
          break;
        }
        case OpCode::kHtIterNext:
          return Fail("ht_iter_next outside a probe loop at pc " +
                      std::to_string(pc));
        case OpCode::kLoadCol:
          *has_load = true;
          out->push_back({VecStep::Kind::kLoadCol, in, -1});
          ++pc;
          break;
        default:
          if (in.op != OpCode::kConst && in.op != OpCode::kShl &&
              in.op != OpCode::kNot && in.op != OpCode::kHash &&
              in.op != OpCode::kHtInsert && in.op != OpCode::kHtLoadPayload &&
              in.op != OpCode::kAggLocal && in.op != OpCode::kGroupByAgg &&
              in.op != OpCode::kEmit && !IsBinOp(in.op)) {
            return Fail("unsupported opcode at pc " + std::to_string(pc));
          }
          out->push_back({StepKindOf(in.op), in, -1});
          ++pc;
          break;
      }
    }
    return true;
  }

  /// Parses the probe-loop idiom starting at `pc` (a kHtProbeInit); on success
  /// appends a kLoop step and sets `next` to the loop's exit pc.
  bool ParseLoop(int pc, int end, int depth, std::vector<VecStep>* out,
                 int* next, bool* has_load) {
    const Instr& probe = p_.code[pc];
    if (pc + 1 >= end || p_.code[pc + 1].op != OpCode::kJmpIfNeg ||
        p_.code[pc + 1].a != probe.a) {
      return Fail("probe not followed by its loop header at pc " +
                  std::to_string(pc));
    }
    const int exit = p_.code[pc + 1].b;
    if (exit > end || exit - 2 < pc + 2) {
      return Fail("probe loop exit out of range at pc " + std::to_string(pc));
    }
    const Instr& jmp = p_.code[exit - 1];
    const Instr& iter_next = p_.code[exit - 2];
    if (jmp.op != OpCode::kJmp || jmp.a != pc + 1 ||
        iter_next.op != OpCode::kHtIterNext || iter_next.a != probe.a ||
        iter_next.b != probe.b || iter_next.c != probe.c ||
        iter_next.cls != probe.cls) {
      // A cls mismatch would misattribute the chain-walk accesses the
      // expansion charges wholesale to probe.cls — fall back instead.
      return Fail("unrecognized probe loop backedge at pc " + std::to_string(pc));
    }
    VecLoop loop;
    loop.probe = probe;
    loop.iter_next = iter_next;
    bool body_loads = false;
    if (!ParseBlock(pc + 2, exit - 2, depth + 1, &loop.body, &body_loads)) {
      return false;
    }
    loop.needs_rows = body_loads;
    *has_load |= body_loads;
    const int idx = static_cast<int>(vp_->loops.size());
    vp_->loops.push_back(std::move(loop));
    out->push_back({VecStep::Kind::kLoop, probe, idx});
    *next = exit;
    return true;
  }

  bool Fail(std::string reason) {
    error_ = std::move(reason);
    return false;
  }

  const std::string& error() const { return error_; }

 private:
  const PipelineProgram& p_;
  VectorProgram* vp_;
  std::string error_;
};

/// \brief Register dataflow analysis over a parsed block.
///
/// Computes each loop body's live-in set (registers to copy into the expanded
/// lanes) and rejects shapes whose row semantics the vectorized execution would
/// not reproduce: registers written inside a loop body and read after it (the
/// interpreter would observe the last iteration's value; the expansion discards
/// it), and bodies that write their own iterator or key register. Also marks
/// loops whose iterator register is read after the loop, so the expansion knows
/// to materialize the interpreter's exhausted -1.
class Analyzer {
 public:
  explicit Analyzer(VectorProgram* vp) : vp_(vp) {}

  // state: 0 = unwritten, 1 = written, 2 = poisoned (stale after a loop).
  bool AnalyzeBlock(std::vector<VecStep>& steps,
                    std::array<uint8_t, kMaxRegs>& state,
                    std::vector<int16_t>* live_in,
                    std::array<bool, kMaxRegs>& writes_out) {
    std::array<bool, kMaxRegs> live_seen{};
    for (int16_t r : *live_in) live_seen[r] = true;
    // reg -> loop whose iterator currently defines it (-1 = none).
    std::array<int, kMaxRegs> iter_of{};
    iter_of.fill(-1);

    auto read = [&](int16_t r) -> bool {
      if (state[r] == 2) {
        return Fail("register r" + std::to_string(r) +
                    " written in a probe loop and read after it");
      }
      if (iter_of[r] >= 0) vp_->loops[iter_of[r]].iter_read_after = true;
      if (state[r] == 0 && !live_seen[r]) {
        live_seen[r] = true;
        live_in->push_back(r);
      }
      return true;
    };
    auto write = [&](int16_t w, std::array<bool, kMaxRegs>& writes) {
      state[w] = 1;
      iter_of[w] = -1;
      writes[w] = true;
    };

    std::vector<int16_t> reads, writes;
    for (VecStep& s : steps) {
      if (s.kind != VecStep::Kind::kLoop) {
        reads.clear();
        writes.clear();
        ReadsWrites(s.in, &reads, &writes);
        for (int16_t r : reads) {
          if (!read(r)) return false;
        }
        for (int16_t w : writes) write(w, writes_out);
        continue;
      }

      VecLoop& loop = vp_->loops[s.loop_idx];
      // The expansion reads the key register from the parent lanes.
      if (!read(loop.probe.b)) return false;
      // The body runs on the expanded lanes: the iterator register is defined
      // by the expansion, everything else the body reads before writing is a
      // live-in copied from the parent.
      std::array<uint8_t, kMaxRegs> body_state{};
      body_state[loop.probe.a] = 1;
      std::array<bool, kMaxRegs> body_writes{};
      if (!AnalyzeBlock(loop.body, body_state, &loop.live_in, body_writes)) {
        return false;
      }
      if (body_writes[loop.probe.a] || body_writes[loop.probe.b]) {
        return Fail("probe loop body writes its iterator or key register");
      }
      // Body live-ins are parent reads (they are gathered from parent lanes).
      for (int16_t r : loop.live_in) {
        if (!read(r)) return false;
      }
      // After the loop the interpreter leaves the iterator exhausted (-1); the
      // expansion materializes that only if something reads it. Every other
      // body-written register is stale in the parent lanes.
      for (int16_t w = 0; w < kMaxRegs; ++w) {
        if (body_writes[w]) {
          state[w] = 2;
          iter_of[w] = -1;
          writes_out[w] = true;
        }
      }
      state[loop.probe.a] = 1;
      iter_of[loop.probe.a] = s.loop_idx;
      writes_out[loop.probe.a] = true;
    }
    return true;
  }

  bool Fail(std::string reason) {
    error_ = std::move(reason);
    return false;
  }

  const std::string& error() const { return error_; }

 private:
  VectorProgram* vp_;
  std::string error_;
};

/// Per-depth lane state of the vectorized runner: reg-major register arrays,
/// lane→row mapping, and the current selection. The top level's rows are always
/// affine (row0 + lane * step — the grid-stride form), so no row array is ever
/// materialized there; expanded child levels gather rows only when their loop
/// subtree actually loads columns. Reused across batches (and calls) through a
/// thread-local pool to keep the hot path allocation-free.
struct Level {
  std::vector<int64_t> regs;  ///< n_regs * stride, reg-major
  std::vector<uint64_t> rows;
  std::vector<int32_t> sel;
  std::vector<int32_t> scratch;
  std::vector<int64_t> entries_tmp;   ///< loop expansion: bucket heads
  std::vector<uint64_t> buckets_tmp;  ///< loop expansion / emit: bucket per lane
  std::vector<int32_t> src_tmp;       ///< loop expansion: parent lane per match
  std::vector<int32_t> emit_starts;   ///< emit partition: per-bucket offsets
  std::vector<int32_t> emit_cursor;
  uint64_t stride = 0;
  int n_sel = 0;
  bool dense = true;        ///< selection is the identity over [0, n_sel)
  bool affine_rows = true;  ///< rows[lane] == row0 + lane * row_step
  uint64_t row0 = 0;
  uint64_t row_step = 1;

  void EnsureLanes(uint64_t lanes, int n_regs) {
    if (stride < lanes) {
      stride = std::max<uint64_t>(lanes, kVecBatchRows);
      rows.resize(stride);
      sel.resize(stride);
      scratch.resize(stride);
    }
    const uint64_t want = stride * static_cast<uint64_t>(n_regs);
    if (regs.size() < want) regs.resize(want);
  }

  int64_t* reg(int r) { return regs.data() + static_cast<uint64_t>(r) * stride; }

  uint64_t RowOf(int32_t lane) const {
    return affine_rows ? row0 + static_cast<uint64_t>(lane) * row_step
                       : rows[lane];
  }
};

/// Identity selection (lane k == k): lets the compiler drop the indirection and
/// vectorize the dense-path primitive loops.
struct IdentitySel {
  int32_t operator[](int i) const { return i; }
  const int32_t* ptr() const { return nullptr; }  // AppendBatch identity form
};

/// Indirect selection through the level's selection vector.
struct IndirectSel {
  const int32_t* s;
  int32_t operator[](int i) const { return s[i]; }
  const int32_t* ptr() const { return s; }
};

class VecRunner {
 public:
  VecRunner(const PipelineProgram& p, const VectorProgram& vp, ExecCtx& ctx,
            std::vector<Level>& levels)
      : p_(p), vp_(vp), ctx_(ctx), levels_(levels) {}

  Status RunBlock(const std::vector<VecStep>& steps, int depth) {
    Level& L = levels_[depth];
    for (const VecStep& s : steps) {
      const int n = L.n_sel;
      if (n == 0) break;  // nothing selected: the rest executes over zero rows
      if (s.kind != VecStep::Kind::kLoop) {
        ctx_.stats->ops += static_cast<uint64_t>(n);
      }
      Status st = L.dense ? ExecStep(s, L, depth, IdentitySel{}, n)
                          : ExecStep(s, L, depth, IndirectSel{L.sel.data()}, n);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

 private:
  template <typename SEL>
  Status ExecStep(const VecStep& s, Level& L, int depth, SEL sel, int n) {
    sim::CostStats* stats = ctx_.stats;
    const Instr& in = s.in;
    switch (s.kind) {
      case VecStep::Kind::kConst: {
        int64_t* __restrict a = L.reg(in.a);
        const int64_t imm = in.imm;
        for (int k = 0; k < n; ++k) a[sel[k]] = imm;
        break;
      }
      case VecStep::Kind::kLoadCol: {
        const ColumnBinding& col = ctx_.cols[in.b];
        int64_t* __restrict a = L.reg(in.a);
        // The per-row width branch of ColumnBinding::Load, hoisted to one
        // branch per batch; the common affine unit-stride batch reads the
        // column contiguously (a vectorizable widening copy).
        if (col.width == 4) {
          if (L.affine_rows && L.row_step == 1) {
            const int32_t* __restrict src =
                reinterpret_cast<const int32_t*>(col.base + L.row0 * 4);
            for (int k = 0; k < n; ++k) {
              const int32_t lane = sel[k];
              a[lane] = src[lane];
            }
          } else {
            for (int k = 0; k < n; ++k) {
              const int32_t lane = sel[k];
              int32_t v;
              std::memcpy(&v, col.base + L.RowOf(lane) * 4, 4);
              a[lane] = v;
            }
          }
        } else {
          if (L.affine_rows && L.row_step == 1) {
            const int64_t* __restrict src =
                reinterpret_cast<const int64_t*>(col.base + L.row0 * 8);
            for (int k = 0; k < n; ++k) {
              const int32_t lane = sel[k];
              a[lane] = src[lane];
            }
          } else {
            for (int k = 0; k < n; ++k) {
              const int32_t lane = sel[k];
              std::memcpy(&a[lane], col.base + L.RowOf(lane) * 8, 8);
            }
          }
        }
        stats->bytes_read += static_cast<uint64_t>(col.width) * n;
        break;
      }
      case VecStep::Kind::kBin:
        return RunBin(L, in, sel, n);
      case VecStep::Kind::kNot: {
        int64_t* a = L.reg(in.a);
        const int64_t* b = L.reg(in.b);
        BinLoop(a, b, b, sel, n,
                [](int64_t x, int64_t) { return int64_t{x == 0}; });
        break;
      }
      case VecStep::Kind::kHash: {
        int64_t* a = L.reg(in.a);
        const int64_t* b = L.reg(in.b);
        BinLoop(a, b, b, sel, n, [](int64_t x, int64_t) {
          return static_cast<int64_t>(HashMix64(static_cast<uint64_t>(x)));
        });
        break;
      }
      case VecStep::Kind::kFilter: {
        const int64_t* a = L.reg(in.a);
        int m = 0;
        int32_t* out = L.scratch.data();
        for (int k = 0; k < n; ++k) {
          const int32_t lane = sel[k];
          out[m] = lane;
          m += a[lane] != 0;
        }
        if (m != n || !L.dense) {
          std::swap(L.sel, L.scratch);
          L.dense = false;
        }
        L.n_sel = m;
        break;
      }
      case VecStep::Kind::kHtInsert: {
        auto* ht = static_cast<JoinHashTable*>(ctx_.ht_slots[in.a]);
        const int64_t* key = L.reg(in.b);
        const int64_t* payload[8];
        for (int i = 0; i < in.d; ++i) payload[i] = L.reg(in.c + i);
        int64_t tmp[8];
        for (int k = 0; k < n; ++k) {
          const int32_t lane = sel[k];
          for (int i = 0; i < in.d; ++i) tmp[i] = payload[i][lane];
          ht->Insert(key[lane], tmp);
        }
        CountAccess(stats, in.cls, static_cast<uint64_t>(n));
        if (ctx_.atomic_group_update) stats->atomics += static_cast<uint64_t>(n);
        stats->bytes_written +=
            static_cast<uint64_t>(n) * (2 + in.d) * sizeof(int64_t);
        break;
      }
      case VecStep::Kind::kHtLoadPayload: {
        auto* ht = static_cast<JoinHashTable*>(ctx_.ht_slots[in.c]);
        const int64_t* entry = L.reg(in.b);
        int64_t* out[8];
        for (int i = 0; i < in.d; ++i) out[i] = L.reg(in.a + i);
        if (in.d == 1) {
          int64_t* o0 = out[0];
          for (int k = 0; k < n; ++k) {
            const int32_t lane = sel[k];
            o0[lane] = ht->PayloadOf(entry[lane])[0];
          }
        } else {
          for (int k = 0; k < n; ++k) {
            const int32_t lane = sel[k];
            const int64_t* payload = ht->PayloadOf(entry[lane]);
            for (int i = 0; i < in.d; ++i) out[i][lane] = payload[i];
          }
        }
        break;
      }
      case VecStep::Kind::kAggLocal: {
        int64_t* acc = &ctx_.local_accs[in.a];
        const int64_t* v = L.reg(in.b);
        switch (static_cast<AggFunc>(in.c)) {
          case AggFunc::kSum: {
            int64_t s2 = *acc;
            for (int k = 0; k < n; ++k) s2 += v[sel[k]];
            *acc = s2;
            break;
          }
          case AggFunc::kCount:
            *acc += n;
            break;
          case AggFunc::kMin: {
            int64_t m2 = *acc;
            for (int k = 0; k < n; ++k) {
              const int64_t x = v[sel[k]];
              if (x < m2) m2 = x;
            }
            *acc = m2;
            break;
          }
          case AggFunc::kMax: {
            int64_t m2 = *acc;
            for (int k = 0; k < n; ++k) {
              const int64_t x = v[sel[k]];
              if (x > m2) m2 = x;
            }
            *acc = m2;
            break;
          }
        }
        break;
      }
      case VecStep::Kind::kGroupByAgg: {
        auto* ht = static_cast<AggHashTable*>(ctx_.ht_slots[in.a]);
        const int64_t* key = L.reg(in.b);
        const int64_t* vals[8];
        for (int i = 0; i < in.d; ++i) vals[i] = L.reg(in.c + i);
        int64_t tmp[8];
        uint64_t probes = 0;
        const bool atomic = ctx_.atomic_group_update;
        for (int k = 0; k < n; ++k) {
          const int32_t lane = sel[k];
          for (int i = 0; i < in.d; ++i) tmp[i] = vals[i][lane];
          ht->Update(key[lane], tmp, atomic, &probes);
        }
        CountAccess(stats, in.cls, probes);
        if (atomic) stats->atomics += static_cast<uint64_t>(in.d) * n;
        break;
      }
      case VecStep::Kind::kEmit: {
        const int64_t* vals[kMaxRegs];
        for (int i = 0; i < in.b; ++i) vals[i] = L.reg(in.a + i);
        if (in.d == 0) {
          ctx_.emit->AppendBatch(vals, in.b, sel.ptr(),
                                 static_cast<uint64_t>(n), stats);
        } else {
          // Hash-pack: counting partition — one pass to bucket and count, one
          // stable ascending scatter — so per-bucket lane order matches the
          // interpreter's append order at O(n + buckets) instead of
          // O(n * buckets).
          const int64_t* tag = L.reg(in.c);
          const uint64_t nt = static_cast<uint64_t>(ctx_.n_emit_targets);
          if (L.buckets_tmp.size() < static_cast<size_t>(n)) {
            L.buckets_tmp.resize(n);
          }
          if (L.emit_starts.size() < nt + 1) {
            L.emit_starts.resize(nt + 1);
            L.emit_cursor.resize(nt + 1);
          }
          uint64_t* bucket_of = L.buckets_tmp.data();
          int32_t* starts = L.emit_starts.data();
          int32_t* cursor = L.emit_cursor.data();
          std::fill(starts, starts + nt + 1, 0);
          for (int k = 0; k < n; ++k) {
            const uint64_t b = static_cast<uint64_t>(tag[sel[k]]) % nt;
            bucket_of[k] = b;
            ++starts[b + 1];
          }
          for (uint64_t b = 0; b < nt; ++b) starts[b + 1] += starts[b];
          std::copy(starts, starts + nt + 1, cursor);
          int32_t* out = L.scratch.data();
          for (int k = 0; k < n; ++k) out[cursor[bucket_of[k]]++] = sel[k];
          for (uint64_t b = 0; b < nt; ++b) {
            const int32_t m = starts[b + 1] - starts[b];
            if (m > 0) {
              ctx_.emit_targets[b]->AppendBatch(vals, in.b, out + starts[b],
                                                static_cast<uint64_t>(m), stats);
            }
          }
        }
        break;
      }
      case VecStep::Kind::kLoop:
        return RunLoop(vp_.loops[s.loop_idx], depth, sel, n);
    }
    return Status::OK();
  }

  /// Fused binary-primitive loop. The register columns all live in one backing
  /// array, which blocks auto-vectorization under the compiler's aliasing
  /// rules; generated code always writes a fresh register, so the distinct-
  /// operand fast path can assert no overlap (__restrict) and let the loop
  /// vectorize. The aliasing-safe fallback keeps hand-built programs correct.
  template <typename SEL, typename F>
  static inline void BinLoop(int64_t* a, const int64_t* b, const int64_t* c,
                             SEL sel, int n, F f) {
    if (a != b && a != c) {
      int64_t* __restrict ar = a;
      const int64_t* __restrict br = b;
      const int64_t* __restrict cr = c;
      for (int k = 0; k < n; ++k) {
        const int32_t l = sel[k];
        ar[l] = f(br[l], cr[l]);
      }
    } else {
      for (int k = 0; k < n; ++k) {
        const int32_t l = sel[k];
        a[l] = f(b[l], c[l]);
      }
    }
  }

  template <typename SEL>
  Status RunBin(Level& L, const Instr& in, SEL sel, int n) {
    int64_t* a = L.reg(in.a);
    const int64_t* b = L.reg(in.b);
    const int64_t* c = L.reg(in.c);
    switch (in.op) {
      case OpCode::kAdd:
        BinLoop(a, b, c, sel, n, [](int64_t x, int64_t y) { return x + y; });
        break;
      case OpCode::kSub:
        BinLoop(a, b, c, sel, n, [](int64_t x, int64_t y) { return x - y; });
        break;
      case OpCode::kMul:
        BinLoop(a, b, c, sel, n, [](int64_t x, int64_t y) { return x * y; });
        break;
      case OpCode::kDiv:
        for (int k = 0; k < n; ++k) {
          const int64_t d = c[sel[k]];
          if (d == 0) {
            return Status::Internal("division by zero in pipeline '" + p_.label +
                                    "'");
          }
          a[sel[k]] = b[sel[k]] / d;
        }
        break;
      case OpCode::kShl: {
        const int64_t imm = in.imm;
        BinLoop(a, b, b, sel, n,
                [imm](int64_t x, int64_t) { return x << imm; });
        break;
      }
      case OpCode::kCmpLt:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x < y}; });
        break;
      case OpCode::kCmpLe:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x <= y}; });
        break;
      case OpCode::kCmpGt:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x > y}; });
        break;
      case OpCode::kCmpGe:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x >= y}; });
        break;
      case OpCode::kCmpEq:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x == y}; });
        break;
      case OpCode::kCmpNe:
        BinLoop(a, b, c, sel, n,
                [](int64_t x, int64_t y) { return int64_t{x != y}; });
        break;
      case OpCode::kAnd:
        BinLoop(a, b, c, sel, n, [](int64_t x, int64_t y) {
          return int64_t{x != 0 && y != 0};
        });
        break;
      case OpCode::kOr:
        BinLoop(a, b, c, sel, n, [](int64_t x, int64_t y) {
          return int64_t{x != 0 || y != 0};
        });
        break;
      default:
        return Status::Internal("non-binary opcode in kBin step");
    }
    return Status::OK();
  }

  /// Match-list expansion: walks each selected lane's whole bucket chain once
  /// (charging exactly the accesses and micro-ops the interpreter's
  /// probe-init / iter-next sequence would), then runs the body over the
  /// expanded lanes — in lane-major order, which is the interpreter's
  /// tuple-major processing order.
  template <typename SEL>
  Status RunLoop(const VecLoop& loop, int depth, SEL sel, int n) {
    Level& P = levels_[depth];
    Level& C = levels_[depth + 1];
    sim::CostStats* stats = ctx_.stats;
    auto* ht = static_cast<JoinHashTable*>(ctx_.ht_slots[loop.probe.c]);
    const int64_t* key = P.reg(loop.probe.b);
    constexpr int kPrefetchDist = 16;

    // Pass 1: hash every selected key into its bucket index (pure compute,
    // one tight loop). Pass 2: resolve bucket heads with software-pipelined
    // prefetching (the lookahead a tuple-at-a-time interpreter can't do),
    // prefetching each head entry for the chain walk of pass 3.
    C.EnsureLanes(std::max<uint64_t>(static_cast<uint64_t>(n), kVecBatchRows),
                  vp_.n_regs);
    if (C.entries_tmp.size() < static_cast<size_t>(n)) C.entries_tmp.resize(n);
    if (C.buckets_tmp.size() < static_cast<size_t>(n)) C.buckets_tmp.resize(n);
    if (C.src_tmp.size() < C.stride) C.src_tmp.resize(C.stride);
    uint64_t* buckets = C.buckets_tmp.data();
    for (int k = 0; k < n; ++k) buckets[k] = ht->BucketOf(key[sel[k]]);
    int64_t* heads = C.entries_tmp.data();
    for (int k = 0; k < kPrefetchDist && k < n; ++k) {
      ht->PrefetchBucketSlot(buckets[k]);
    }
    for (int k = 0; k < n; ++k) {
      if (k + kPrefetchDist < n) ht->PrefetchBucketSlot(buckets[k + kPrefetchDist]);
      heads[k] = ht->HeadOfBucket(buckets[k]);
      ht->PrefetchEntry(heads[k]);
    }

    // Pass 2: walk each chain once, expanding matches straight into the child
    // level's iterator column (lane-major, the interpreter's tuple order).
    int64_t* citer = C.reg(loop.probe.a);
    int32_t* src = C.src_tmp.data();
    uint64_t cap = C.stride;
    uint64_t m = 0;
    uint64_t accesses = 0;
    for (int k = 0; k < n; ++k) {
      const int32_t lane = sel[k];
      const int64_t kv = key[lane];
      uint64_t hops = 0;
      int64_t e = ht->FindKeyFrom(heads[k], kv, &hops);
      accesses += 1 + hops;
      while (e >= 0) {
        if (m == cap) {
          // Rare multi-match overflow: grow the child level, preserving the
          // already-expanded iterator column across the re-stride.
          std::vector<int64_t> stash(citer, citer + m);
          C.EnsureLanes(cap * 2, vp_.n_regs);
          C.src_tmp.resize(C.stride);
          citer = C.reg(loop.probe.a);
          std::copy(stash.begin(), stash.end(), citer);
          src = C.src_tmp.data();
          cap = C.stride;
        }
        citer[m] = e;
        src[m] = lane;
        ++m;
        hops = 0;
        e = ht->FindKeyFrom(ht->NextEntry(e), kv, &hops);
        accesses += hops;
      }
    }
    if (loop.iter_read_after) {
      // The interpreter leaves the iterator register exhausted (-1).
      int64_t* iter = P.reg(loop.probe.a);
      for (int k = 0; k < n; ++k) iter[sel[k]] = -1;
    }
    CountAccess(stats, loop.probe.cls, accesses);
    // Interpreter micro-ops: probe-init once per lane, the loop-header check
    // once per match plus the exiting check, iter-next and the backedge jump
    // once per match: n + (m + n) + m + m.
    stats->ops += 2 * static_cast<uint64_t>(n) + 3 * m;
    if (m == 0) return Status::OK();
    HETEX_CHECK(m < (1ull << 31)) << "probe expansion overflows lane index";

    const int32_t* s = src;
    for (int16_t r : loop.live_in) {
      const int64_t* pr = P.reg(r);
      int64_t* cr = C.reg(r);
      for (uint64_t i = 0; i < m; ++i) cr[i] = pr[s[i]];
    }
    if (loop.needs_rows) {
      if (P.affine_rows) {
        for (uint64_t i = 0; i < m; ++i) {
          C.rows[i] = P.row0 + static_cast<uint64_t>(s[i]) * P.row_step;
        }
      } else {
        for (uint64_t i = 0; i < m; ++i) C.rows[i] = P.rows[s[i]];
      }
    }
    C.n_sel = static_cast<int>(m);
    C.dense = true;
    C.affine_rows = false;
    return RunBlock(loop.body, depth + 1);
  }

  const PipelineProgram& p_;
  const VectorProgram& vp_;
  ExecCtx& ctx_;
  std::vector<Level>& levels_;
};

}  // namespace

VectorizeResult TryVectorize(const PipelineProgram& program) {
  g_attempts.fetch_add(1, std::memory_order_relaxed);
  auto vp = std::make_shared<VectorProgram>();
  vp->n_regs = program.n_regs;

  auto fallback = [&](std::string reason) {
    g_fallbacks.fetch_add(1, std::memory_order_relaxed);
    HETEX_LOG(Warning) << "vectorizer fallback for pipeline '" << program.label
                       << "': " << reason << " (row interpreter tier retained)";
    VectorizeResult r;
    r.reason = std::move(reason);
    return r;
  };

  const int n = static_cast<int>(program.code.size());
  if (n == 0 || program.code.back().op != OpCode::kEnd) {
    return fallback("program not kEnd-terminated");
  }
  // The interpreter interleaves emits per tuple; batch execution runs each
  // emit step over the whole selection. With a single kEmit the per-target
  // append order is identical (ascending lanes / lane-major expansion), but
  // two emit sites would reorder rows across tuples — fall back.
  int n_emits = 0;
  for (const Instr& in : program.code) n_emits += in.op == OpCode::kEmit;
  if (n_emits > 1) {
    return fallback("multiple emit sites (append order would diverge)");
  }
  Parser parser(program, vp.get());
  bool has_load = false;
  if (!parser.ParseBlock(0, n - 1, 0, &vp->top, &has_load)) {
    return fallback(parser.error());
  }

  Analyzer analyzer(vp.get());
  std::array<uint8_t, kMaxRegs> state{};
  std::array<bool, kMaxRegs> writes{};
  std::vector<int16_t> top_live_in;
  if (!analyzer.AnalyzeBlock(vp->top, state, &top_live_in, writes)) {
    return fallback(analyzer.error());
  }
  if (!top_live_in.empty()) {
    // The interpreter carries register values across tuples; batch execution
    // does not, so a top-level read-before-write cannot be reproduced.
    return fallback("register r" + std::to_string(top_live_in.front()) +
                    " read before written");
  }

  g_vectorized.fetch_add(1, std::memory_order_relaxed);
  VectorizeResult r;
  r.program = std::move(vp);
  return r;
}

Status RunRowsVectorized(const PipelineProgram& program, ExecCtx& ctx,
                         uint64_t rows) {
  HETEX_CHECK(program.finalized) << "pipeline '" << program.label
                                 << "' executed before ConvertToMachineCode";
  HETEX_CHECK(program.vec != nullptr)
      << "pipeline '" << program.label << "' has no vectorized lowering";
  const VectorProgram& vp = *program.vec;

  thread_local std::vector<Level> levels;
  if (static_cast<int>(levels.size()) < vp.max_loop_depth + 1) {
    levels.resize(vp.max_loop_depth + 1);
  }

  VecRunner runner(program, vp, ctx, levels);
  sim::CostStats* stats = ctx.stats;
  uint64_t tuples = 0;
  uint64_t row = ctx.row_begin;
  Status st;
  while (row < rows) {
    Level& L0 = levels[0];
    L0.EnsureLanes(kVecBatchRows, vp.n_regs);
    const uint64_t remaining = (rows - row + ctx.row_step - 1) / ctx.row_step;
    const int n = static_cast<int>(
        std::min<uint64_t>(remaining, static_cast<uint64_t>(kVecBatchRows)));
    L0.n_sel = n;
    L0.dense = true;
    L0.affine_rows = true;
    L0.row0 = row;
    L0.row_step = ctx.row_step;
    row += static_cast<uint64_t>(n) * ctx.row_step;
    tuples += static_cast<uint64_t>(n);
    st = runner.RunBlock(vp.top, 0);
    if (!st.ok()) break;
    // Every surviving tuple executes the terminating kEnd.
    stats->ops += static_cast<uint64_t>(levels[0].n_sel);
  }
  stats->tuples += tuples;
  return st;
}

VectorizerCounters GetVectorizerCounters() {
  VectorizerCounters c;
  c.attempts = g_attempts.load(std::memory_order_relaxed);
  c.vectorized = g_vectorized.load(std::memory_order_relaxed);
  c.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return c;
}

void ResetVectorizerCounters() {
  g_attempts.store(0, std::memory_order_relaxed);
  g_vectorized.store(0, std::memory_order_relaxed);
  g_fallbacks.store(0, std::memory_order_relaxed);
}

}  // namespace hetex::jit
