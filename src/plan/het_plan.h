#ifndef HETEX_PLAN_HET_PLAN_H_
#define HETEX_PLAN_HET_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/query_spec.h"
#include "sim/topology.h"

namespace hetex::plan {

/// \brief Instance placement decided by the heterogeneity-aware planner.
struct Layout {
  /// One entry per probe-stage worker instance (CPU instances are interleaved
  /// across sockets, as the paper does for scalability runs).
  std::vector<sim::DeviceId> probe_instances;

  /// Device units that need a hash-table replica for broadcast joins: one per
  /// participating CPU socket plus one per participating GPU.
  std::vector<sim::DeviceId> build_units;

  /// Socket hosting the final gather/global-reduce instance.
  int gather_socket = 0;

  bool routers_present = true;   ///< false in bare (no-HetExchange) mode
  bool has_gpu = false;
  bool has_cpu = false;
};

/// Computes the layout for a policy on a topology.
Layout ComputeLayout(const ExecPolicy& policy, const sim::Topology& topo);

/// \brief Node of the explicit heterogeneity-aware operator DAG (the paper's
/// Fig. 1e / Fig. 2b artifact). Used for plan printing, inspection and the §3.3
/// placement-rule validation; the executor derives its runtime graph from the
/// same Layout decisions.
struct HetOpNode {
  enum class Kind {
    kSegmenter, kRouter, kMemMove, kCpu2Gpu, kGpu2Cpu, kPack, kHashPack, kUnpack,
    kFilter, kProject, kJoinBuild, kJoinProbe, kReduceLocal, kGroupByLocal,
    kGather, kResult,
  };

  Kind kind;
  std::string detail;          ///< policy / predicate / table, free-form
  sim::DeviceType device = sim::DeviceType::kCpu;
  int dop = 1;
  std::vector<int> children;   ///< indices into HetPlan::nodes

  static const char* KindName(Kind kind);
};

/// The heterogeneity-aware plan: a DAG of HetOpNodes rooted at kResult.
struct HetPlan {
  std::vector<HetOpNode> nodes;
  int root = -1;

  const HetOpNode& node(int i) const { return nodes.at(i); }
  std::string ToString() const;
};

/// Builds the heterogeneity-aware plan for a query under a policy (the paper's
/// physical-plan -> HetExchange-augmented-plan step, inserted heuristically as in
/// the paper's prototype, §5).
HetPlan BuildHetPlan(const QuerySpec& spec, const ExecPolicy& policy,
                     const sim::Topology& topo);

/// Structural validation of the §3.3 converter rules:
///  1. relational operators only consume unpacked inputs (an Unpack lies between
///     any block-producing operator and the relational section of its pipeline);
///  2. every CPU->GPU (GPU->CPU) boundary is a Cpu2Gpu (Gpu2Cpu) operator;
///  3. a MemMove precedes every device-crossing into a GPU pipeline (relational
///     operators must be data-location agnostic);
///  4. hash-policy routers are fed by hash-packs (block hash-homogeneity).
Status ValidateHetPlan(const HetPlan& plan);

}  // namespace hetex::plan

#endif  // HETEX_PLAN_HET_PLAN_H_
