#ifndef HETEX_PLAN_HET_PLAN_H_
#define HETEX_PLAN_HET_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/query_spec.h"
#include "sim/topology.h"

namespace hetex::plan {

/// \brief Instance placement decided by the heterogeneity-aware planner.
struct Layout {
  /// One entry per probe-stage worker instance (CPU instances are interleaved
  /// across sockets, as the paper does for scalability runs).
  std::vector<sim::DeviceId> probe_instances;

  /// Device units that need a hash-table replica for broadcast joins: one per
  /// participating CPU socket plus one per participating GPU.
  std::vector<sim::DeviceId> build_units;

  /// Socket hosting the final gather/global-reduce instance.
  int gather_socket = 0;

  bool routers_present = true;   ///< false in bare (no-HetExchange) mode
  bool has_gpu = false;
  bool has_cpu = false;
};

/// Computes the layout for a policy on a topology.
Layout ComputeLayout(const ExecPolicy& policy, const sim::Topology& topo);

/// Data-flow policy of a kRouter node (the paper's exchange flavours, §3.1).
enum class RouterPolicy {
  kRoundRobin,   ///< strict rotation
  kLoadBalance,  ///< least virtual-time backlog
  kHash,         ///< consumer owns the block's hash partition
  kBroadcast,    ///< every consumer receives every block
  kUnion,        ///< N producers funnel into one consumer
};

const char* RouterPolicyName(RouterPolicy policy);

/// \brief Node of the explicit heterogeneity-aware operator DAG (the paper's
/// Fig. 1e / Fig. 2b artifact).
///
/// The DAG is the *executable* artifact: besides the printable/validatable
/// structure, BuildHetPlan stamps every placement, degree-of-parallelism and
/// cost parameter the lowering needs, so core::GraphBuilder can instantiate the
/// runtime graph from the plan alone (no side-channel Layout consultation).
struct HetOpNode {
  enum class Kind {
    kSegmenter, kRouter, kMemMove, kCpu2Gpu, kGpu2Cpu, kPack, kHashPack, kUnpack,
    kFilter, kProject, kJoinBuild, kJoinProbe, kReduceLocal, kGroupByLocal,
    kGather, kResult,
  };

  Kind kind;
  std::string detail;          ///< policy / predicate / table, free-form
  sim::DeviceType device = sim::DeviceType::kCpu;
  int dop = 1;
  std::vector<int> children;   ///< indices into HetPlan::nodes

  // --- Lowering parameters, stamped by BuildHetPlan. ---
  RouterPolicy policy = RouterPolicy::kRoundRobin;  ///< kRouter
  /// Concrete device instances executing this operator (relational/pack span
  /// nodes and kGather). One entry per parallel instance.
  std::vector<sim::DeviceId> placement;
  std::string table;           ///< kSegmenter: catalog table to segment
  int join_id = -1;            ///< kJoinBuild / kJoinProbe
  int n_buckets = 0;           ///< kHashPack: hash-partition fanout
  /// kCpu2Gpu: the crossing addresses producer memory in place over UVA
  /// (no mem-move below; waives the §3.3 rule-3 requirement).
  bool uva = false;
  uint64_t block_rows = 0;     ///< kSegmenter: block granularity in tuples
  double control_cost = 0;     ///< kRouter: control-plane cost per message
  double crossing_latency = 0; ///< kGpu2Cpu: device->host task-spawn latency
  double init_latency = 0;     ///< kRouter: one-time bring-up latency
  double per_block_cost = 0;   ///< kSegmenter: per-block segmentation cost

  static const char* KindName(Kind kind);
};

/// True when a kCpu2Gpu crossing addresses producer memory in place over UVA —
/// the stamped flag, or an explicit "UVA ..." detail prefix in hand-written
/// plans. Shared by the §3.3 rule-3 waiver and the lowering so the two can
/// never disagree on what counts as a UVA crossing.
inline bool IsUvaCrossing(const HetOpNode& n) {
  return n.kind == HetOpNode::Kind::kCpu2Gpu &&
         (n.uva || n.detail.rfind("UVA", 0) == 0);
}

/// The heterogeneity-aware plan: a DAG of HetOpNodes rooted at kResult.
struct HetPlan {
  std::vector<HetOpNode> nodes;
  int root = -1;
  /// Router queue depth (backpressure) of every lowered edge.
  uint64_t channel_capacity = 16;

  const HetOpNode& node(int i) const { return nodes.at(i); }
  HetOpNode& node(int i) { return nodes.at(i); }
  std::string ToString() const;
};

/// Builds the heterogeneity-aware plan for a query under a policy (the paper's
/// physical-plan -> HetExchange-augmented-plan step, inserted heuristically as in
/// the paper's prototype, §5).
HetPlan BuildHetPlan(const QuerySpec& spec, const ExecPolicy& policy,
                     const sim::Topology& topo);

/// Structural validation of the §3.3 converter rules:
///  1. relational operators only consume unpacked inputs (an Unpack lies between
///     any block-producing operator and the relational section of its pipeline);
///  2. every CPU->GPU (GPU->CPU) boundary is a Cpu2Gpu (Gpu2Cpu) operator;
///  3. a MemMove precedes every device-crossing into a GPU pipeline (relational
///     operators must be data-location agnostic);
///  4. hash-policy routers are fed by hash-packs (block hash-homogeneity).
Status ValidateHetPlan(const HetPlan& plan);

/// Checks that a policy's device placement exists on the topology before the
/// lowering asserts on it: a GPU-placed policy on a no-GPU topology (or one
/// naming a GPU index past the fabric) is a named InvalidArgument the caller
/// can surface on the QueryResult, not a layout abort.
Status ValidatePolicyForTopology(const ExecPolicy& policy,
                                 const sim::Topology& topo);

}  // namespace hetex::plan

#endif  // HETEX_PLAN_HET_PLAN_H_
