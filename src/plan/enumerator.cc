#include "plan/enumerator.h"

#include <set>
#include <sstream>

namespace hetex::plan {

namespace {

const char* ModeTag(ExecPolicy::Mode mode) {
  switch (mode) {
    case ExecPolicy::Mode::kCpuOnly: return "cpu";
    case ExecPolicy::Mode::kGpuOnly: return "gpu";
    case ExecPolicy::Mode::kHybrid: return "het";
  }
  return "?";
}

std::string Label(const ExecPolicy& p) {
  std::ostringstream os;
  os << ModeTag(p.mode) << "/" << (p.split_probe_stage ? "split" : "fused");
  if (p.split_probe_stage && p.stage_a_cpu_only) os << "-asym";
  os << "/" << (p.load_balance ? "lb" : "rr") << "/b" << p.block_rows;
  if (p.mode != ExecPolicy::Mode::kGpuOnly && p.cpu_workers > 0) {
    os << "/w" << p.cpu_workers;
  }
  if (p.mode != ExecPolicy::Mode::kCpuOnly && !p.gpus.empty()) {
    os << "/g";
    for (size_t i = 0; i < p.gpus.size(); ++i) {
      os << (i > 0 ? "+" : "") << p.gpus[i];
    }
  }
  return os.str();
}

}  // namespace

std::vector<PlanCandidate> EnumeratePlans(const QuerySpec& spec,
                                          const ExecPolicy& base,
                                          const sim::Topology& topo,
                                          const std::vector<int>* available_gpus) {
  std::vector<PlanCandidate> out;
  std::set<std::string> seen;

  auto add = [&](ExecPolicy policy) {
    if (available_gpus != nullptr &&
        policy.mode != ExecPolicy::Mode::kCpuOnly && policy.gpus.empty()) {
      // "All GPUs" means "all *surviving* GPUs" under a restricted device set.
      policy.gpus = *available_gpus;
    }
    PlanCandidate cand;
    cand.label = Label(policy);
    if (!seen.insert(cand.label).second) return;  // deduplicated variant
    cand.policy = policy;
    cand.plan = BuildHetPlan(spec, policy, topo);
    // Every candidate must be a plan the lowering accepts; the heuristic
    // builder guarantees this, but keep the contract enforced.
    if (!ValidateHetPlan(cand.plan).ok()) return;
    out.push_back(std::move(cand));
  };

  if (!base.use_hetexchange) {
    // Bare single-unit plan: no exchanges, nothing to search.
    add(base);
    return out;
  }

  // Placement mixes within the base policy's constraints.
  std::vector<ExecPolicy::Mode> mixes;
  const bool gpus_available =
      topo.num_gpus() > 0 &&
      (available_gpus == nullptr || !available_gpus->empty());
  switch (base.mode) {
    case ExecPolicy::Mode::kCpuOnly:
      mixes = {ExecPolicy::Mode::kCpuOnly};
      break;
    case ExecPolicy::Mode::kGpuOnly:
      // A GPU-pinned base with no surviving device yields no candidates — the
      // optimizer reports the empty space instead of planning onto a lost GPU.
      if (gpus_available) mixes = {ExecPolicy::Mode::kGpuOnly};
      break;
    case ExecPolicy::Mode::kHybrid:
      mixes = {ExecPolicy::Mode::kCpuOnly};
      if (gpus_available) {
        mixes.push_back(ExecPolicy::Mode::kGpuOnly);
        mixes.push_back(ExecPolicy::Mode::kHybrid);
      }
      break;
  }

  const int base_workers =
      base.cpu_workers < 0 ? topo.num_cores() : base.cpu_workers;

  // GPU pool the placement search may pin builds to: the base policy's
  // explicit set, else the surviving set, else every GPU in the fabric. Empty
  // on a no-GPU topology — no GPU-placed candidate is ever emitted then.
  std::vector<int> gpu_pool;
  if (!base.gpus.empty()) {
    gpu_pool = base.gpus;
  } else if (available_gpus != nullptr) {
    gpu_pool = *available_gpus;
  } else {
    for (int g = 0; g < topo.num_gpus(); ++g) gpu_pool.push_back(g);
  }

  for (ExecPolicy::Mode mix : mixes) {
    ExecPolicy p = base;
    p.mode = mix;
    if (mix != ExecPolicy::Mode::kGpuOnly) p.cpu_workers = base_workers;

    // Shape × router policy.
    for (bool split : {false, true}) {
      for (bool lb : {true, false}) {
        ExecPolicy v = p;
        v.split_probe_stage = split;
        v.load_balance = lb;
        add(v);
      }
    }

    // Segmentation granularity: a 4× coarser fused variant (fewer, larger
    // blocks trade control-plane cost against distribution slack).
    {
      ExecPolicy v = p;
      v.split_probe_stage = false;
      v.load_balance = true;
      v.block_rows = base.block_rows * 4;
      add(v);
    }

    // CPU degree of parallelism: half the workers (contended sockets can
    // prefer fewer streams; the Fig. 6/7 saturation regime).
    if (mix != ExecPolicy::Mode::kGpuOnly && base_workers > 1) {
      ExecPolicy v = p;
      v.split_probe_stage = false;
      v.load_balance = true;
      v.cpu_workers = base_workers / 2;
      add(v);
    }

    // Per-join build placement across the fabric: pin the GPU side to each
    // single GPU in the pool. The coster prices the resulting per-link (PCIe
    // or NVLink peer) traffic asymmetrically, so on a backlogged fabric one
    // build GPU can beat the symmetric spread.
    if (mix != ExecPolicy::Mode::kCpuOnly && gpu_pool.size() > 1) {
      for (int g : gpu_pool) {
        ExecPolicy v = p;
        v.split_probe_stage = false;
        v.load_balance = true;
        v.gpus = {g};
        add(v);
      }
    }

    // Asymmetric per-branch stages (Fig. 1e): the filter stage on cores only,
    // the join/aggregate stage on the full mix. The lowering always ran this
    // shape; the hybrid mix is the only one with both unit classes to split.
    if (mix == ExecPolicy::Mode::kHybrid) {
      ExecPolicy v = p;
      v.split_probe_stage = true;
      v.stage_a_cpu_only = true;
      v.load_balance = true;
      add(v);
    }
  }
  return out;
}

}  // namespace hetex::plan
