#ifndef HETEX_PLAN_QUERY_SPEC_H_
#define HETEX_PLAN_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "jit/hash_table.h"
#include "plan/expr.h"
#include "sim/topology.h"

namespace hetex::plan {

/// \brief One equi-join against a dimension ("build") table.
///
/// The evaluation plans are broadcast hash joins, matching the plans the paper's
/// optimizer picks for SSB (§6.1): the (filtered, projected) build side is
/// broadcast by mem-move to every join participant, each of which builds a local
/// hash table; the probe is fused into the fact pipeline.
struct JoinSpec {
  std::string build_table;
  ExprPtr build_filter;                  ///< may be null
  std::string build_key;                 ///< key column on the build table
  std::vector<std::string> payload;      ///< build columns carried to the probe side
  std::string probe_key;                 ///< key column on the probe (fact) side
  /// Optimizer cardinality estimate of the *filtered* build side (sizes the hash
  /// table, as a codegen engine would from catalog statistics). 0 = table rows.
  uint64_t build_rows_estimate = 0;
};

/// One aggregate of the query's SELECT list.
struct AggSpec {
  ExprPtr value;        ///< ignored for kCount
  jit::AggFunc func;
  std::string name;
};

/// \brief Device-independent logical/physical query description (the paper's
/// Fig. 1a / Fig. 2a stage): scan-filter-join*-aggregate over a star schema.
struct QuerySpec {
  std::string name;
  std::string fact_table;
  ExprPtr fact_filter;                   ///< may be null; over fact columns
  std::vector<JoinSpec> joins;
  std::vector<ExprPtr> group_by;         ///< empty = scalar aggregation
  std::vector<AggSpec> aggs;

  /// Upper bound on distinct groups (sizes the aggregation hash tables; codegen
  /// engines take this from optimizer cardinality estimates).
  uint64_t expected_groups = 1ull << 16;

  /// Product of the group-by key *domain* cardinalities (what a naive dense
  /// cardinality estimator would have to materialize; drives the DBMS G Q4.3
  /// failure emulation). 0 = unknown/small.
  uint64_t group_domain_cardinality = 0;

  /// Feature flag consumed by engine emulations: set when the original SQL used a
  /// string inequality/range predicate (DBMS G cannot execute those — Q2.2, §6.1).
  bool uses_string_range_predicate = false;
};

/// Bits per group-by key when packing several keys into one 64-bit group key.
inline constexpr int kGroupKeyBits = 21;

/// Combines group-by key expressions into a single int64 key expression
/// (key0 in the highest bits). All SSB group keys fit well within 21 bits.
ExprPtr CombineGroupKeys(const std::vector<ExprPtr>& keys);

/// Canonical content key of a query spec: a stable serialization of every
/// field that determines the computed rows (`name`, a display label, is
/// excluded). Two specs with equal keys compute identical results over
/// identical table contents — the serving layer's result cache appends the
/// referenced tables' mutation epochs to this to form its lookup key.
std::string CanonicalSpecKey(const QuerySpec& spec);

/// \brief How and where to run a query (the heterogeneity-aware part of the plan).
struct ExecPolicy {
  enum class Mode { kCpuOnly, kGpuOnly, kHybrid };

  Mode mode = Mode::kHybrid;
  int cpu_workers = -1;            ///< -1: all cores (ignored for kGpuOnly)
  std::vector<int> gpus;           ///< empty: all GPUs (ignored for kCpuOnly)

  /// false = "bare Proteus": no HetExchange operators, single compute unit,
  /// sequential execution (the dashed baselines of Figs 7/8). GPU bare mode reads
  /// host memory via UVA, as the paper's non-HetExchange GPU configuration does.
  bool use_hetexchange = true;

  /// Input columns pre-loaded in GPU device memory (the Fig. 4 regime for GPU
  /// systems). Only meaningful for kGpuOnly.
  bool data_on_gpu = false;

  /// Split the fact pipeline into a filter stage and a join/aggregate stage
  /// connected by a hash-pack + hash router (exercises the paper's Fig. 1e shape;
  /// default keeps the fused single-stage plan the optimizer prefers).
  bool split_probe_stage = false;
  int hash_router_buckets = 0;     ///< 0: one bucket per consumer

  /// Asymmetric per-branch stages (requires split_probe_stage and kHybrid):
  /// the filter stage (stage A) runs on the CPU workers only while the
  /// join/aggregate stage (stage B) keeps the full placement mix — the
  /// paper's Fig. 1e shape with the cheap scan on cores and the joins on
  /// accelerators. Ignored unless both unit classes are present.
  bool stage_a_cpu_only = false;

  uint64_t block_rows = 128 * 1024;  ///< staging-block granularity in tuples
  size_t channel_capacity = 16;      ///< router queue depth (backpressure)

  /// Router consumer choice: true = virtual-time-aware least-loaded (the paper's
  /// load-balancing behaviour); false = strict round-robin (deterministic tests).
  bool load_balance = true;

  static ExecPolicy CpuOnly(int workers = -1) {
    ExecPolicy p;
    p.mode = Mode::kCpuOnly;
    p.cpu_workers = workers;
    return p;
  }
  static ExecPolicy GpuOnly(std::vector<int> gpus = {}) {
    ExecPolicy p;
    p.mode = Mode::kGpuOnly;
    p.gpus = std::move(gpus);
    return p;
  }
  static ExecPolicy Hybrid(int workers = -1, std::vector<int> gpus = {}) {
    ExecPolicy p;
    p.mode = Mode::kHybrid;
    p.cpu_workers = workers;
    p.gpus = std::move(gpus);
    return p;
  }
  static ExecPolicy Bare(sim::DeviceType type) {
    ExecPolicy p;
    p.mode = type == sim::DeviceType::kCpu ? Mode::kCpuOnly : Mode::kGpuOnly;
    p.cpu_workers = 1;
    p.gpus = {0};
    p.use_hetexchange = false;
    return p;
  }
};

}  // namespace hetex::plan

#endif  // HETEX_PLAN_QUERY_SPEC_H_
