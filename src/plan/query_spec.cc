#include "plan/query_spec.h"

#include <sstream>

namespace hetex::plan {

namespace {

void AppendExpr(std::ostringstream& os, const ExprPtr& e) {
  os << (e != nullptr ? e->ToString() : "-");
}

}  // namespace

std::string CanonicalSpecKey(const QuerySpec& spec) {
  std::ostringstream os;
  os << "fact=" << spec.fact_table << ";filter=";
  AppendExpr(os, spec.fact_filter);
  for (const JoinSpec& j : spec.joins) {
    os << ";join{" << j.build_table << ";bf=";
    AppendExpr(os, j.build_filter);
    os << ";bk=" << j.build_key << ";pk=" << j.probe_key << ";pay=";
    for (size_t i = 0; i < j.payload.size(); ++i) {
      os << (i ? "," : "") << j.payload[i];
    }
    os << ";est=" << j.build_rows_estimate << "}";
  }
  os << ";group=";
  for (size_t i = 0; i < spec.group_by.size(); ++i) {
    if (i) os << ",";
    AppendExpr(os, spec.group_by[i]);
  }
  for (const AggSpec& a : spec.aggs) {
    os << ";agg{" << static_cast<int>(a.func) << ";";
    AppendExpr(os, a.value);
    os << "}";
  }
  os << ";eg=" << spec.expected_groups
     << ";gdc=" << spec.group_domain_cardinality
     << ";srp=" << (spec.uses_string_range_predicate ? 1 : 0);
  return os.str();
}

}  // namespace hetex::plan
