#include "plan/coster.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace hetex::plan {

namespace {

using Kind = HetOpNode::Kind;

// Span/transport predicates mirroring the lowering's DAG partitioning (the
// coster prices exactly the stage structure GraphBuilder instantiates).
bool IsSpanKind(Kind k) {
  return k == Kind::kUnpack || k == Kind::kPack || k == Kind::kHashPack ||
         k == Kind::kFilter || k == Kind::kProject || k == Kind::kJoinBuild ||
         k == Kind::kJoinProbe || k == Kind::kReduceLocal ||
         k == Kind::kGroupByLocal || k == Kind::kGather;
}

bool IsTransportKind(Kind k) {
  return k == Kind::kRouter || k == Kind::kMemMove || k == Kind::kCpu2Gpu ||
         k == Kind::kGpu2Cpu || k == Kind::kSegmenter;
}

bool IsDecorationKind(Kind k) {
  return k == Kind::kMemMove || k == Kind::kCpu2Gpu || k == Kind::kGpu2Cpu;
}

bool IsProducerTop(Kind k) { return k == Kind::kPack || k == Kind::kHashPack; }

/// Micro-op estimate of evaluating an expression once (one VM op per node).
double ExprOps(const ExprPtr& e) {
  if (e == nullptr) return 0;
  if (e->kind() != Expr::Kind::kBin) return 1;
  return 1 + ExprOps(e->lhs()) + ExprOps(e->rhs());
}

/// Fraction of `t`'s sampled staging rows satisfying `filter`; `fallback` when
/// the sample is unavailable (dropped staging, missing columns).
double SampleSelectivity(const storage::Table& t, const ExprPtr& filter,
                         double fallback) {
  if (filter == nullptr) return 1.0;
  std::set<std::string> cols;
  filter->CollectColumns(&cols);
  for (const auto& c : cols) {
    if (t.FindColumn(c) < 0) return fallback;
  }
  uint64_t hits = 0;
  const uint64_t sampled = t.SampleRows(4096, [&](uint64_t r) {
    const RowGetter row = [&](const std::string& name) {
      return t.column(name).At(r);
    };
    if (filter->Eval(row) != 0) ++hits;
  });
  if (sampled == 0) return fallback;
  // Clamp away from exactly zero: a sample miss is not proof of emptiness.
  const double sel = static_cast<double>(hits) / static_cast<double>(sampled);
  return std::max(sel, 0.5 / static_cast<double>(sampled));
}

uint64_t CeilDiv(uint64_t a, uint64_t b) { return b == 0 ? 0 : (a + b - 1) / b; }

/// Row count for cardinality estimation: staging rows, falling back to the
/// placed chunk totals when staging was dropped (DropStaging keeps the placed
/// data — and its row counts — intact).
uint64_t TableRows(const storage::Table& t) {
  if (t.rows() > 0) return t.rows();
  uint64_t placed = 0;
  for (const auto& chunk : t.chunks()) placed += chunk.rows;
  return placed;
}

// ---------------------------------------------------------------------------
// Structural walk: decompose the DAG into the stages the lowering would
// instantiate (a light-weight mirror of GraphBuilder::Analyze).
// ---------------------------------------------------------------------------

struct BranchEst {
  std::vector<int> nodes;                ///< span nodes, consumer→producer
  std::vector<sim::DeviceId> instances;  ///< stamped placement (or synthesized)
  sim::DeviceType device = sim::DeviceType::kCpu;
  bool gpu_entry = false;  ///< kCpu2Gpu on the consumer-side decoration
  bool uva = false;        ///< the crossing addresses producer memory over UVA
  int feed = -1;
};

struct StageEst {
  std::vector<BranchEst> branches;
  int router = -1;
  int segmenter = -1;
  double crossing_latency = 0;  ///< producer-side gpu2cpu task-spawn latency
  std::vector<int> producer_tops;
};

struct PlanShape {
  std::vector<StageEst> fact_stages;  ///< consumer-first (gather, probe, ...)
  std::vector<StageEst> build_stages;
};

Status WalkPlan(const HetPlan& plan, PlanShape* shape) {
  if (plan.root < 0 || plan.root >= static_cast<int>(plan.nodes.size())) {
    return Status::InvalidArgument("coster: plan has no root node");
  }

  std::vector<int> build_tops;
  std::set<int> seen_build_tops;

  auto collect_span = [&](int top, BranchEst* branch) -> Status {
    int cur = top;
    while (true) {
      const HetOpNode& n = plan.node(cur);
      if (!IsSpanKind(n.kind)) {
        return Status::Internal(std::string("coster: span contains operator ") +
                                HetOpNode::KindName(n.kind));
      }
      branch->nodes.push_back(cur);
      if (branch->nodes.size() > plan.nodes.size()) {
        return Status::Internal("coster: span does not terminate (plan cycle)");
      }
      if (branch->instances.empty() && !n.placement.empty()) {
        branch->instances = n.placement;
        branch->device = n.device;
      }
      if (n.kind == Kind::kJoinProbe) {
        for (size_t c = 1; c < n.children.size(); ++c) {
          if (seen_build_tops.insert(n.children[c]).second) {
            build_tops.push_back(n.children[c]);
          }
        }
      }
      if (n.children.empty()) {
        return Status::Internal("coster: span reaches a leaf without a source");
      }
      const int child = n.children[0];
      const Kind ck = plan.node(child).kind;
      if (IsTransportKind(ck) || IsProducerTop(ck)) {
        branch->feed = child;
        if (branch->instances.empty()) {
          // No placement stamp (hand-written plan): synthesize dop instances.
          const HetOpNode& rep = plan.node(branch->nodes.front());
          branch->device = rep.device;
          for (int i = 0; i < std::max(1, rep.dop); ++i) {
            branch->instances.push_back(sim::DeviceId{rep.device, 0});
          }
        }
        return Status::OK();
      }
      cur = child;
    }
  };

  // Walks a decoration chain to its exchange terminal, harvesting crossing
  // flags. `branch` non-null on the consumer side, `stage` on the producer.
  auto walk_decoration = [&](int from, BranchEst* branch,
                             StageEst* stage) -> int {
    int cur = from;
    size_t steps = 0;
    while (IsDecorationKind(plan.node(cur).kind)) {
      const HetOpNode& n = plan.node(cur);
      if (n.kind == Kind::kCpu2Gpu && branch != nullptr) {
        branch->gpu_entry = true;
        if (IsUvaCrossing(n)) branch->uva = true;
      }
      if (n.kind == Kind::kGpu2Cpu && stage != nullptr) {
        stage->crossing_latency =
            std::max(stage->crossing_latency, n.crossing_latency);
      }
      if (n.children.empty() || ++steps > plan.nodes.size()) return -1;
      cur = n.children[0];
    }
    return cur;
  };

  auto parse_feed = [&](StageEst* stage) -> Status {
    for (BranchEst& branch : stage->branches) {
      const int cur = walk_decoration(branch.feed, &branch, nullptr);
      if (cur < 0) return Status::Internal("coster: dangling exchange decoration");
      const HetOpNode& n = plan.node(cur);
      if (n.kind == Kind::kRouter) {
        if (stage->router != -1 && stage->router != cur) {
          return Status::Internal("coster: branches fed by different routers");
        }
        stage->router = cur;
      } else if (n.kind == Kind::kSegmenter) {
        stage->segmenter = cur;
      } else if (IsProducerTop(n.kind)) {
        stage->producer_tops.push_back(cur);
      } else {
        return Status::Internal(
            std::string("coster: span fed by non-exchange operator ") +
            HetOpNode::KindName(n.kind));
      }
    }
    if (stage->router != -1) {
      for (int child : plan.node(stage->router).children) {
        const int cur = walk_decoration(child, nullptr, stage);
        if (cur < 0) return Status::Internal("coster: dangling exchange decoration");
        const HetOpNode& n = plan.node(cur);
        if (n.kind == Kind::kSegmenter) {
          stage->segmenter = cur;
        } else if (IsSpanKind(n.kind)) {
          stage->producer_tops.push_back(cur);
        } else {
          return Status::Internal(
              std::string("coster: router fed by non-pipeline operator ") +
              HetOpNode::KindName(n.kind));
        }
      }
    }
    return Status::OK();
  };

  const HetOpNode& root = plan.node(plan.root);
  if (root.kind != Kind::kResult || root.children.size() != 1) {
    return Status::InvalidArgument("coster: plan root must be a result node");
  }

  std::vector<int> tops = {root.children[0]};
  while (true) {
    if (shape->fact_stages.size() > plan.nodes.size()) {
      return Status::Internal("coster: fact chain does not terminate");
    }
    StageEst stage;
    for (int top : tops) {
      BranchEst branch;
      Status st = collect_span(top, &branch);
      if (!st.ok()) return st;
      stage.branches.push_back(std::move(branch));
    }
    Status st = parse_feed(&stage);
    if (!st.ok()) return st;
    const bool at_source = stage.segmenter != -1;
    std::vector<int> next = stage.producer_tops;
    shape->fact_stages.push_back(std::move(stage));
    if (at_source) break;
    if (next.empty()) return Status::Internal("coster: exchange with no producers");
    tops = std::move(next);
  }

  // Build networks, grouped by their feeding exchange terminal.
  std::vector<int> group_keys;
  std::map<int, StageEst> by_key;
  for (int top : build_tops) {
    BranchEst branch;
    Status st = collect_span(top, &branch);
    if (!st.ok()) return st;
    // Grouping key only; parse_feed re-walks the decoration for the flags.
    const int key = walk_decoration(branch.feed, nullptr, nullptr);
    if (key < 0) return Status::Internal("coster: build span with a dangling feed");
    if (by_key.find(key) == by_key.end()) group_keys.push_back(key);
    by_key[key].branches.push_back(std::move(branch));
  }
  for (int key : group_keys) {
    StageEst& stage = by_key[key];
    Status st = parse_feed(&stage);
    if (!st.ok()) return st;
    if (stage.segmenter == -1) {
      return Status::Internal("coster: build stage without a source segmenter");
    }
    shape->build_stages.push_back(std::move(stage));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-tuple work profiles, converted to CostStats for CostModel::WorkCost.
// ---------------------------------------------------------------------------

struct Profile {
  double ops = 0;
  double near = 0, mid = 0, far = 0;
  double atomics = 0;
  double bytes_read = 0, bytes_written = 0;

  void AddAccess(const sim::CostModel& cm, uint64_t region_bytes, double p) {
    switch (cm.RandomAccessClass(region_bytes)) {
      case 0: near += p; break;
      case 1: mid += p; break;
      default: far += p; break;
    }
  }

  sim::CostStats Scale(double rows) const {
    sim::CostStats s;
    s.tuples = static_cast<uint64_t>(std::llround(rows));
    s.ops = static_cast<uint64_t>(std::llround(ops * rows));
    s.near_accesses = static_cast<uint64_t>(std::llround(near * rows));
    s.mid_accesses = static_cast<uint64_t>(std::llround(mid * rows));
    s.far_accesses = static_cast<uint64_t>(std::llround(far * rows));
    s.atomics = static_cast<uint64_t>(std::llround(atomics * rows));
    s.bytes_read = static_cast<uint64_t>(std::llround(bytes_read * rows));
    s.bytes_written = static_cast<uint64_t>(std::llround(bytes_written * rows));
    return s;
  }
};

enum class StageRole { kBuild, kFilterStage, kProbe, kGather };

StageRole ClassifyStage(const HetPlan& plan, const StageEst& stage) {
  bool has_probe = false, has_hashpack = false;
  for (int id : stage.branches.front().nodes) {
    switch (plan.node(id).kind) {
      case Kind::kJoinBuild: return StageRole::kBuild;
      case Kind::kGather: return StageRole::kGather;
      case Kind::kJoinProbe: has_probe = true; break;
      case Kind::kHashPack: has_hashpack = true; break;
      default: break;
    }
  }
  if (has_hashpack && !has_probe) return StageRole::kFilterStage;
  return StageRole::kProbe;
}

/// One instance's pricing inputs for a stage.
struct InstanceCost {
  sim::VTime block_time = 0;     ///< per-block completion (compute/transfer max)
  sim::VTime transfer_time = 0;  ///< per-block interconnect share (diagnostic)
  int link = -1;                 ///< PCIe link the per-block DMA occupies
  uint64_t blocks = 0;           ///< assigned by the distribution model
};

/// Distributes `total_blocks` over `insts` under the router policy and returns
/// the stage completion time (max per-instance finish).
sim::VTime DistributeBlocks(RouterPolicy policy, uint64_t total_blocks,
                            std::vector<InstanceCost>* insts) {
  const size_t n = insts->size();
  if (n == 0 || total_blocks == 0) return 0;
  switch (policy) {
    case RouterPolicy::kBroadcast:
      for (auto& i : *insts) i.blocks = total_blocks;
      break;
    case RouterPolicy::kLoadBalance: {
      // Greedy least-finish-time, the analytic analogue of the runtime's
      // virtual-time backlog balancing. Chunk very large block counts so the
      // loop stays bounded.
      const uint64_t chunk = std::max<uint64_t>(1, total_blocks / 8192);
      std::vector<sim::VTime> finish(n, 0);
      for (uint64_t b = 0; b < total_blocks; b += chunk) {
        const uint64_t k = std::min(chunk, total_blocks - b);
        size_t best = 0;
        for (size_t i = 1; i < n; ++i) {
          if (finish[i] + (*insts)[i].block_time <
              finish[best] + (*insts)[best].block_time) {
            best = i;
          }
        }
        finish[best] += static_cast<double>(k) * (*insts)[best].block_time;
        (*insts)[best].blocks += k;
      }
      break;
    }
    case RouterPolicy::kRoundRobin:
    case RouterPolicy::kHash:
    case RouterPolicy::kUnion:
      // Rotation: instance i receives every n-th block.
      for (size_t i = 0; i < n; ++i) {
        (*insts)[i].blocks =
            total_blocks / n + (i < total_blocks % n ? 1 : 0);
      }
      break;
  }
  sim::VTime done = 0;
  for (const auto& i : *insts) {
    done = sim::MaxT(done, static_cast<double>(i.blocks) * i.block_time);
  }
  return done;
}

}  // namespace

std::string CardinalityEstimate::ToString() const {
  std::ostringstream os;
  os << "fact=" << fact_rows << " sel=" << fact_selectivity;
  for (size_t j = 0; j < build_rows.size(); ++j) {
    os << " join" << j << "=" << build_rows[j] << "/" << build_input_rows[j];
  }
  os << " out=" << output_rows;
  return os.str();
}

std::string CostEstimate::ToString() const {
  std::ostringstream os;
  os << "total=" << total << " (init=" << init << " build=" << build
     << " probe=" << probe << " xfer=" << transfer << " gather=" << gather
     << ")";
  return os.str();
}

CardinalityEstimate EstimateCardinalities(const QuerySpec& spec,
                                          const storage::Catalog& catalog) {
  CardinalityEstimate c;
  const storage::Table* fact = catalog.Get(spec.fact_table);
  c.fact_rows = fact != nullptr ? std::max<uint64_t>(1, TableRows(*fact)) : 1;
  c.fact_selectivity =
      fact != nullptr ? SampleSelectivity(*fact, spec.fact_filter, 1.0) : 1.0;

  double cumulative = c.fact_selectivity;
  for (const JoinSpec& join : spec.joins) {
    const storage::Table* build = catalog.Get(join.build_table);
    uint64_t input = build != nullptr && TableRows(*build) > 0
                         ? TableRows(*build)
                         : std::max<uint64_t>(1, join.build_rows_estimate);
    double fallback = join.build_rows_estimate > 0
                          ? std::min(1.0, static_cast<double>(
                                              join.build_rows_estimate) /
                                              static_cast<double>(input))
                          : 1.0;
    const double sel = build != nullptr
                           ? SampleSelectivity(*build, join.build_filter, fallback)
                           : fallback;
    const uint64_t filtered = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(sel * static_cast<double>(input))));
    c.build_input_rows.push_back(input);
    c.build_rows.push_back(filtered);
    // FK uniformity of the star schema: a fact row's key hits each distinct
    // build key with equal probability, so the expected output multiplier is
    // filtered rows / distinct keys. For unique-key dimensions this is the
    // survival fraction; duplicate-key builds correctly predict fan-out > 1
    // (distinct comes from the column stats; row count is the fallback).
    uint64_t key_domain = input;
    if (build != nullptr) {
      const int key_idx = build->FindColumn(join.build_key);
      if (key_idx >= 0) {
        const storage::ColumnStats key_stats = build->column_stats(key_idx);
        if (key_stats.sampled > 0 && key_stats.distinct > 0) {
          key_domain = key_stats.distinct;
        }
      }
    }
    constexpr double kMaxFanout = 1024.0;  // runaway-estimate guard
    const double s = std::min(
        kMaxFanout, static_cast<double>(filtered) / static_cast<double>(key_domain));
    c.join_selectivities.push_back(s);
    cumulative *= s;
  }
  c.output_rows = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::llround(cumulative * static_cast<double>(c.fact_rows))));
  return c;
}

PlanCoster::PlanCoster(const QuerySpec& spec, const storage::Catalog& catalog,
                       const sim::Topology& topo, Options options)
    : spec_(&spec),
      catalog_(&catalog),
      topo_(&topo),
      options_(options),
      cards_(EstimateCardinalities(spec, catalog)) {}

sim::VTime PlanCoster::EstimateGpuToGpuTransfer(const sim::Topology& topo,
                                                int src_gpu, int dst_gpu,
                                                uint64_t bytes, uint64_t cols) {
  if (src_gpu == dst_gpu) return 0;
  const sim::CostModel& cm = topo.cost_model();
  const double c = static_cast<double>(std::max<uint64_t>(1, cols));
  const int peer = topo.PeerLinkOf(src_gpu, dst_gpu);
  if (peer >= 0) {
    return c * cm.peer_dma_latency +
           static_cast<double>(bytes) / topo.peer_link(peer).rate();
  }
  // No peer link: stage through host memory — two PCIe hops, each paying the
  // per-column DMA setup (the staging buffer is pinned, so both hops run at
  // the pinned rate), exactly the runtime's fallback path.
  return 2.0 * c * cm.dma_latency +
         2.0 * static_cast<double>(bytes) / cm.pcie_bw;
}

Result<CostEstimate> PlanCoster::Cost(const HetPlan& plan) const {
  const sim::CostModel& cm = topo_->cost_model();
  PlanShape shape;
  Status st = WalkPlan(plan, &shape);
  if (!st.ok()) return st;

  CostEstimate est;
  for (const auto& n : plan.nodes) {
    if (n.kind == Kind::kRouter) {
      est.init = sim::MaxT(est.init, n.init_latency);
    }
  }

  // --- Schema-derived widths. Fact columns a fused scan reads; the packed
  // wire columns a split plan ships between stages (8-byte registers).
  const storage::Table* fact = catalog_->Get(spec_->fact_table);
  std::set<std::string> payloads;
  for (const auto& join : spec_->joins) {
    for (const auto& p : join.payload) payloads.insert(p);
  }
  auto fact_col_set = [&](bool include_filter) {
    std::set<std::string> cols;
    if (include_filter && spec_->fact_filter != nullptr) {
      spec_->fact_filter->CollectColumns(&cols);
    }
    for (const auto& join : spec_->joins) cols.insert(join.probe_key);
    for (const auto& agg : spec_->aggs) {
      if (agg.value != nullptr) agg.value->CollectColumns(&cols);
    }
    for (const auto& g : spec_->group_by) g->CollectColumns(&cols);
    std::set<std::string> out;
    for (const auto& c : cols) {
      if (payloads.count(c) > 0) continue;
      if (fact == nullptr || fact->FindColumn(c) >= 0) out.insert(c);
    }
    return out;
  };
  const std::set<std::string> scan_cols = fact_col_set(/*include_filter=*/true);
  const std::set<std::string> wire_cols = fact_col_set(/*include_filter=*/false);
  double scan_width = 0;
  for (const auto& c : scan_cols) {
    scan_width += fact != nullptr && fact->FindColumn(c) >= 0
                      ? fact->column(c).width()
                      : 8;
  }
  const double wire_width = 8.0 * static_cast<double>(wire_cols.size());

  // --- Hash-table footprints (mirrors QueryCompiler::JoinHtBytes so access
  // size classes agree with the generated code).
  auto ht_bytes = [&](size_t j) -> uint64_t {
    if (j >= spec_->joins.size()) return 1;
    const JoinSpec& join = spec_->joins[j];
    uint64_t cap = join.build_rows_estimate > 0
                       ? join.build_rows_estimate * 13 / 10 + 64
                       : (j < cards_.build_input_rows.size()
                              ? cards_.build_input_rows[j]
                              : 1);
    const uint64_t stride = (2 + join.payload.size()) * sizeof(int64_t);
    return cap * stride + cap * 2 * sizeof(int64_t);
  };
  const uint64_t n_aggs = spec_->aggs.size();
  const uint64_t agg_ht_bytes =
      spec_->group_by.empty() ? 0 : spec_->expected_groups * 2 * (8 + 8 * n_aggs);

  const double filter_ops = ExprOps(spec_->fact_filter);
  double agg_value_ops = 0;
  for (const auto& agg : spec_->aggs) agg_value_ops += ExprOps(agg.value) + 1;
  double group_key_ops = 0;
  for (const auto& g : spec_->group_by) group_key_ops += ExprOps(g) + 2;

  const double total_join_sel = [&] {
    double s = 1.0;
    for (double js : cards_.join_selectivities) s *= js;
    return s;
  }();

  // Per-tuple profile of a probe span. `from_table`: fused scan (filter still
  // to run) vs the packed stage-B input of a split plan (filter already done).
  auto probe_profile = [&](bool from_table) {
    Profile p;
    p.bytes_read = from_table ? scan_width : wire_width;
    double reach = 1.0;
    if (from_table && spec_->fact_filter != nullptr) {
      p.ops += filter_ops + 1;
      reach = cards_.fact_selectivity;
    }
    for (size_t j = 0; j < spec_->joins.size(); ++j) {
      p.ops += reach * 4;  // probe init + loop control
      p.AddAccess(cm, ht_bytes(j), reach);
      const double s =
          j < cards_.join_selectivities.size() ? cards_.join_selectivities[j] : 1;
      reach *= s;
      if (!spec_->joins[j].payload.empty()) {
        p.ops += reach * (1 + static_cast<double>(spec_->joins[j].payload.size()));
        p.AddAccess(cm, ht_bytes(j), reach);
      }
    }
    if (spec_->group_by.empty()) {
      p.ops += reach * agg_value_ops;
    } else {
      p.ops += reach * (group_key_ops + agg_value_ops + 1);
      p.AddAccess(cm, agg_ht_bytes, reach);
    }
    return p;
  };

  auto filter_stage_profile = [&] {
    Profile p;
    p.bytes_read = scan_width;
    p.ops += filter_ops + 1;
    const double survivors = cards_.fact_selectivity;
    p.ops += survivors * (2 + static_cast<double>(wire_cols.size()));
    p.bytes_written = survivors * wire_width;
    return p;
  };

  auto build_profile = [&](size_t j, uint64_t* n_cols) {
    Profile p;
    const JoinSpec* join = j < spec_->joins.size() ? &spec_->joins[j] : nullptr;
    double in_width = 8;
    *n_cols = 1;
    double sel = 1.0;
    if (join != nullptr) {
      const storage::Table* t = catalog_->Get(join->build_table);
      std::set<std::string> cols;
      if (join->build_filter != nullptr) join->build_filter->CollectColumns(&cols);
      cols.insert(join->build_key);
      for (const auto& c : join->payload) cols.insert(c);
      in_width = 0;
      for (const auto& c : cols) {
        in_width += t != nullptr && t->FindColumn(c) >= 0 ? t->column(c).width() : 8;
      }
      *n_cols = cols.size();
      p.ops += ExprOps(join->build_filter) + 1;
      sel = j < cards_.join_selectivities.size() ? cards_.join_selectivities[j] : 1;
    }
    p.bytes_read = in_width;
    p.ops += sel * 3;
    p.AddAccess(cm, ht_bytes(j), sel);
    p.atomics += sel;
    return p;
  };

  // --- Instance pricing under the fluid bandwidth-share model.
  auto socket_backlog = [&](int s) {
    return s < static_cast<int>(options_.socket_backlog_workers.size())
               ? std::max(0, options_.socket_backlog_workers[s])
               : 0;
  };

  // Extended link-index space shared with the runtime's interconnects: PCIe
  // links first, then GPU peer links, then the inter-socket link. Every entry
  // is one serially-shared resource in the busy/backlog accounting below.
  const int n_pcie = topo_->num_pcie_links();
  const int n_peer = topo_->num_peer_links();
  const int inter_socket_index = n_pcie + n_peer;

  // Fraction of a source table's rows resident on each memory node — drives
  // the fabric routing estimates (cross-socket DRAM pulls and GPU-resident
  // sources reached over peer links or staged PCIe hops).
  auto node_fractions = [&](const storage::Table* t) {
    std::map<sim::MemNodeId, double> frac;
    if (t == nullptr || !t->placed()) return frac;
    uint64_t total = 0;
    for (const auto& chunk : t->chunks()) total += chunk.rows;
    if (total == 0) return frac;
    for (const auto& chunk : t->chunks()) {
      frac[chunk.node] +=
          static_cast<double>(chunk.rows) / static_cast<double>(total);
    }
    return frac;
  };

  auto stage_instances = [&](const StageEst& stage, const Profile& profile,
                             uint64_t block_rows, double in_width,
                             uint64_t cols,
                             const storage::Table* src_table) {
    std::vector<InstanceCost> out;
    // CPU workers share their socket's DRAM bandwidth — with this candidate's
    // own workers and with every other in-flight session's (the runtime's
    // cross-session fluid-share divisor).
    std::map<int, int> socket_workers;
    for (const auto& b : stage.branches) {
      for (const auto& dev : b.instances) {
        if (dev.is_cpu()) socket_workers[dev.index] += 1;
      }
    }
    cols = std::max<uint64_t>(1, cols);
    const sim::CostStats block_stats =
        profile.Scale(static_cast<double>(block_rows));
    const std::map<sim::MemNodeId, double> src_frac = node_fractions(src_table);
    const double block_bytes = static_cast<double>(block_rows) * in_width;
    // DMA rate for this stage's source blocks: an unpinned source table
    // transfers at the pageable rate, exactly as the runtime's DMA engine
    // charges it (UVA streams and pinned staging hops keep the pinned rate).
    const double host_pcie_bw =
        src_table != nullptr && src_table->placed() && !src_table->pinned()
            ? cm.pcie_pageable_bw
            : cm.pcie_bw;
    // Load-balance routers pin GPU-resident blocks to their local GPU when
    // that GPU is among the consumers — those fractions never travel, and no
    // other instance ever receives them. Credit the route accordingly.
    const RouterPolicy pol = stage.router >= 0
                                 ? plan.node(stage.router).policy
                                 : RouterPolicy::kRoundRobin;
    std::vector<char> gpu_inst(static_cast<size_t>(topo_->num_gpus()), 0);
    for (const auto& b : stage.branches) {
      for (const auto& dev : b.instances) {
        if (dev.is_gpu() && dev.index < topo_->num_gpus()) {
          gpu_inst[static_cast<size_t>(dev.index)] = 1;
        }
      }
    }
    auto lb_pinned = [&](int src_gpu) {
      return pol == RouterPolicy::kLoadBalance && src_gpu >= 0 &&
             src_gpu < topo_->num_gpus() &&
             gpu_inst[static_cast<size_t>(src_gpu)] != 0;
    };
    for (const auto& b : stage.branches) {
      for (const auto& dev : b.instances) {
        InstanceCost ic;
        if (dev.is_cpu()) {
          const int divisor =
              socket_workers[dev.index] + socket_backlog(dev.index);
          const double bw =
              std::min(cm.cpu_core_bw, cm.cpu_socket_bw / divisor);
          ic.block_time = cm.WorkCost(block_stats, cm.cpu, bw);
          if (!src_frac.empty()) {
            // Route every source fraction the way the runtime would: another
            // socket's DRAM crosses the UPI/QPI link (when the fabric has
            // one), a GPU-resident fraction is a device->host DMA chain over
            // that GPU's PCIe link — unless a load-balance router pins it to
            // its local GPU and this worker never sees it.
            double transfer = 0;
            std::map<int, double> by_link;
            for (const auto& [node, f] : src_frac) {
              const sim::Topology::MemNode& mn = topo_->mem_node(node);
              if (mn.is_gpu) {
                if (lb_pinned(mn.owner.index)) continue;
                const double t =
                    f * (static_cast<double>(cols) * cm.dma_latency +
                         block_bytes / host_pcie_bw);
                transfer += t;
                by_link[topo_->PcieLinkOf(mn.owner.index)] += t;
              } else if (topo_->has_inter_socket_link() &&
                         mn.owner.index != dev.index) {
                const double t =
                    f * (cm.inter_socket_latency +
                         block_bytes / topo_->inter_socket_link().rate());
                transfer += t;
                by_link[inter_socket_index] += t;
              }
            }
            if (transfer > 0) {
              ic.transfer_time = transfer;
              for (const auto& [link, t] : by_link) {
                if (ic.link < 0 || t > by_link[ic.link]) ic.link = link;
              }
              ic.block_time = sim::MaxT(ic.block_time, ic.transfer_time);
            }
          }
        } else if (b.uva) {
          // UVA kernel: its streamed bytes occupy the PCIe link exactly like
          // DMA (the runtime reserves them on the link BandwidthServer), so
          // the link share of the block time is real, steerable occupancy.
          const sim::VTime transfer =
              cm.BandwidthBytes(block_stats, cm.gpu) / cm.pcie_bw;
          const sim::VTime compute = cm.ComputeTime(block_stats, cm.gpu);
          ic.transfer_time = transfer;
          if (dev.index < topo_->num_gpus()) {
            ic.link = topo_->PcieLinkOf(dev.index);
          }
          ic.block_time =
              cm.kernel_launch_latency + sim::MaxT(compute, transfer);
        } else {
          const sim::VTime compute =
              cm.kernel_launch_latency +
              cm.WorkCost(block_stats, cm.gpu, cm.gpu_mem_bw);
          sim::VTime transfer = 0;
          if (b.gpu_entry) {
            // Mem-move stages the block into the GPU: one DMA reservation per
            // column plus the bytes at the source table's DMA rate (pageable
            // when the source is unpinned host memory).
            const sim::VTime host_hop =
                static_cast<double>(cols) * cm.dma_latency +
                block_bytes / host_pcie_bw;
            const int g = dev.index;
            if (src_frac.empty() || g >= topo_->num_gpus()) {
              transfer = host_hop;
              if (g < topo_->num_gpus()) ic.link = topo_->PcieLinkOf(g);
            } else {
              // Route each source fraction the way Edge::MoveToNode would:
              // local GPU memory is free, host DRAM is the PCIe DMA chain, a
              // peer GPU is one NVLink hop (or two staged PCIe hops when the
              // fabric has no peer link) — unless a load-balance router pins
              // that fraction to its own local GPU and this instance never
              // receives it. The instance's link is whichever carries the
              // most traffic.
              std::map<int, double> by_link;
              for (const auto& [node, f] : src_frac) {
                const sim::Topology::MemNode& mn = topo_->mem_node(node);
                sim::VTime t = 0;
                int link = -1;
                if (!mn.is_gpu) {
                  t = host_hop;
                  link = topo_->PcieLinkOf(g);
                } else if (mn.owner.index != g) {
                  const int src_g = mn.owner.index;
                  if (lb_pinned(src_g)) continue;
                  t = EstimateGpuToGpuTransfer(
                      *topo_, src_g, g, static_cast<uint64_t>(block_bytes),
                      cols);
                  const int peer = topo_->PeerLinkOf(src_g, g);
                  link = peer >= 0 ? n_pcie + peer : topo_->PcieLinkOf(g);
                }
                transfer += f * t;
                if (link >= 0) by_link[link] += f * t;
              }
              for (const auto& [link, t] : by_link) {
                if (ic.link < 0 || t > by_link[ic.link]) ic.link = link;
              }
            }
          }
          ic.transfer_time = transfer;
          ic.block_time = sim::MaxT(compute, transfer);
        }
        out.push_back(ic);
      }
    }
    return out;
  };

  auto stage_policy = [&](const StageEst& stage) {
    return stage.router >= 0 ? plan.node(stage.router).policy
                             : RouterPolicy::kRoundRobin;
  };
  auto stage_control = [&](const StageEst& stage) {
    return stage.router >= 0 ? plan.node(stage.router).control_cost : 0.0;
  };

  // --- Shared-link accounting. Every interconnect link — PCIe, GPU peer and
  // inter-socket — is a serially-shared resource: DMA demand from
  // concurrently-running stages (stage-A input DMA and stage-B wire DMA of a
  // split plan land on the same link) serializes, so a phase can never finish
  // before its links drained their total occupancy — plus whatever backlog
  // other in-flight queries queued there (the scheduler's load signal).
  const int n_links = n_pcie + n_peer + 1;  // + the inter-socket slot
  std::vector<double> build_link_busy(n_links, 0.0);
  std::vector<double> fact_link_busy(n_links, 0.0);
  auto link_backlog = [&](int l) {
    if (l < n_pcie) {
      return l < static_cast<int>(options_.link_backlog.size())
                 ? options_.link_backlog[l]
                 : 0.0;
    }
    if (l < inter_socket_index) {
      const int p = l - n_pcie;
      return p < static_cast<int>(options_.peer_link_backlog.size())
                 ? options_.peer_link_backlog[p]
                 : 0.0;
    }
    return options_.inter_socket_backlog;
  };
  auto add_link_busy = [](std::vector<double>* busy,
                          const std::vector<InstanceCost>& insts) {
    for (const auto& ic : insts) {
      if (ic.link >= 0 && ic.link < static_cast<int>(busy->size())) {
        (*busy)[ic.link] += static_cast<double>(ic.blocks) * ic.transfer_time;
      }
    }
  };

  // Mirrors the lowering's staging clamp: GPU-fed sources — and sources over
  // GPU-*resident* chunks, whose scan blocks cross to any non-local consumer
  // through a staging block — never exceed one staging/emit block, whatever
  // granularity the plan stamped.
  auto clamp_block_rows = [&](const StageEst& stage, uint64_t block_rows,
                              const storage::Table* src) {
    bool gpu_bound = false;
    for (const auto& b : stage.branches) {
      for (const auto& dev : b.instances) gpu_bound |= dev.is_gpu();
    }
    if (src != nullptr && !gpu_bound) {
      for (const auto& c : src->chunks()) {
        gpu_bound |= topo_->mem_node(c.node).is_gpu;
      }
    }
    if (gpu_bound) {
      return std::min(block_rows,
                      std::max<uint64_t>(1, options_.pack_block_rows));
    }
    return block_rows;
  };

  // ------------------------------------------------------------------ builds
  for (const StageEst& stage : shape.build_stages) {
    int join_id = -1;
    for (int id : stage.branches.front().nodes) {
      if (plan.node(id).kind == Kind::kJoinBuild) join_id = plan.node(id).join_id;
    }
    const size_t j = join_id >= 0 ? static_cast<size_t>(join_id) : 0;
    const uint64_t rows =
        j < cards_.build_input_rows.size() ? cards_.build_input_rows[j] : 1;
    const HetOpNode& seg = plan.node(stage.segmenter);
    const storage::Table* src_table = catalog_->Get(seg.table);
    const uint64_t block_rows = clamp_block_rows(
        stage, seg.block_rows > 0 ? seg.block_rows : 128 * 1024, src_table);
    const uint64_t blocks = std::max<uint64_t>(1, CeilDiv(rows, block_rows));

    uint64_t n_cols = 1;
    const Profile profile = build_profile(j, &n_cols);
    const double in_width = profile.bytes_read;
    std::vector<InstanceCost> insts = stage_instances(
        stage, profile, std::min(block_rows, std::max<uint64_t>(1, rows)),
        in_width, n_cols, src_table);
    // Broadcast: every unit consumes the full build stream.
    sim::VTime done = DistributeBlocks(RouterPolicy::kBroadcast, blocks, &insts);
    const sim::VTime source = static_cast<double>(blocks) *
                              (seg.per_block_cost + stage_control(stage));
    done = sim::MaxT(done, source);
    est.build = sim::MaxT(est.build, done);
    add_link_busy(&build_link_busy, insts);
    for (const auto& ic : insts) {
      est.transfer = sim::MaxT(
          est.transfer, static_cast<double>(ic.blocks) * ic.transfer_time);
    }
  }
  // Concurrent build networks share the links (and queue behind in-flight
  // queries): the phase cannot beat any link's total occupancy.
  for (int l = 0; l < n_links; ++l) {
    if (build_link_busy[l] > 0) {
      est.build = sim::MaxT(est.build, link_backlog(l) + build_link_busy[l]);
    }
  }

  // ------------------------------------------------------------- fact stages
  // Producer→consumer: the source-fed stage is last in the walk order.
  double rows_in = static_cast<double>(cards_.fact_rows);
  bool from_table = true;
  std::vector<double> probe_out_rows;  // per probe instance: surviving rows
  std::vector<sim::VTime> stage_done;  // per stage: throughput-bound completion
  std::vector<sim::VTime> stage_drain; // per stage: one block's traversal (tail)
  sim::VTime latency_constants = 0;

  for (size_t i = shape.fact_stages.size(); i-- > 0;) {
    const StageEst& stage = shape.fact_stages[i];
    const StageRole role = ClassifyStage(plan, stage);
    latency_constants += stage.crossing_latency;

    if (role == StageRole::kGather) {
      // Partial-aggregate merge: one row per group per probe instance (scalar
      // aggregation: one row per instance).
      const double cap = spec_->group_by.empty()
                             ? 1.0
                             : static_cast<double>(spec_->expected_groups);
      double partials = 0;
      for (double r : probe_out_rows) partials += std::min(cap, std::max(r, 1.0));
      if (probe_out_rows.empty()) partials = 1;
      Profile p;
      p.bytes_read = 8.0 * (1 + static_cast<double>(n_aggs));
      p.ops = static_cast<double>(n_aggs) + 2;
      if (!spec_->group_by.empty()) p.AddAccess(cm, agg_ht_bytes, 1);
      const sim::CostStats s = p.Scale(partials);
      est.gather =
          cm.WorkCost(s, cm.cpu, cm.cpu_core_bw) +
          static_cast<double>(probe_out_rows.size()) * stage_control(stage);
      continue;
    }

    if (role == StageRole::kBuild) {
      return Status::Internal("coster: build span on the fact chain");
    }

    const storage::Table* src_table =
        stage.segmenter >= 0 ? catalog_->Get(plan.node(stage.segmenter).table)
                             : nullptr;
    const uint64_t block_rows = clamp_block_rows(
        stage, stage.segmenter >= 0
                   ? (plan.node(stage.segmenter).block_rows > 0
                          ? plan.node(stage.segmenter).block_rows
                          : 128 * 1024)
                   : options_.pack_block_rows,
        src_table);
    uint64_t blocks = CeilDiv(static_cast<uint64_t>(std::llround(rows_in)),
                              block_rows);
    if (stage.segmenter < 0) {
      // Packed producers flush one partial block per instance at Finish.
      uint64_t producer_insts = 0;
      if (i + 1 < shape.fact_stages.size()) {
        for (const auto& b : shape.fact_stages[i + 1].branches) {
          producer_insts += b.instances.size();
        }
      }
      blocks += producer_insts;
    }
    blocks = std::max<uint64_t>(1, blocks);

    const Profile profile = role == StageRole::kFilterStage
                                ? filter_stage_profile()
                                : probe_profile(from_table);
    const double in_width = from_table ? scan_width : wire_width;
    const uint64_t n_cols = from_table ? scan_cols.size() : wire_cols.size();
    const uint64_t rows_per_block = std::max<uint64_t>(
        1, std::min<uint64_t>(block_rows,
                              static_cast<uint64_t>(std::llround(
                                  std::max(1.0, rows_in / blocks)))));
    std::vector<InstanceCost> insts = stage_instances(
        stage, profile, rows_per_block, in_width, n_cols, src_table);
    sim::VTime done = DistributeBlocks(stage_policy(stage), blocks, &insts);

    const double per_block_src =
        stage.segmenter >= 0 ? plan.node(stage.segmenter).per_block_cost : 0.0;
    done = sim::MaxT(done, static_cast<double>(blocks) *
                               (per_block_src + stage_control(stage)));
    stage_done.push_back(done);
    add_link_busy(&fact_link_busy, insts);
    sim::VTime slowest_block = 0;
    for (const auto& ic : insts) {
      slowest_block = sim::MaxT(slowest_block, ic.block_time);
      est.transfer = sim::MaxT(
          est.transfer, static_cast<double>(ic.blocks) * ic.transfer_time);
    }
    stage_drain.push_back(slowest_block);

    // Rows entering the consumer stage / partials entering gather.
    if (role == StageRole::kFilterStage) {
      rows_in *= cards_.fact_selectivity;
      from_table = false;
    } else {  // probe
      const double survive =
          (from_table ? cards_.fact_selectivity : 1.0) * total_join_sel;
      probe_out_rows.clear();
      for (const auto& ic : insts) {
        probe_out_rows.push_back(static_cast<double>(ic.blocks) *
                                 static_cast<double>(rows_per_block) * survive);
      }
    }
  }

  // Pipelined stages: the phase is bottleneck-bound, plus a drain term — the
  // last block still traverses every non-bottleneck stage after the bottleneck
  // finishes. This is what separates a split plan (extra exchange + stage) from
  // its fused sibling when both are bottlenecked on the same source stage.
  sim::VTime fact_phase = 0;
  size_t bottleneck = 0;
  for (size_t s = 0; s < stage_done.size(); ++s) {
    if (stage_done[s] > fact_phase) {
      fact_phase = stage_done[s];
      bottleneck = s;
    }
  }
  for (size_t s = 0; s < stage_drain.size(); ++s) {
    if (s != bottleneck) fact_phase += stage_drain[s];
  }
  // Pipelined fact stages contend for the links concurrently: the phase is
  // bounded below by each link's serialized DMA occupancy. Cross-query backlog
  // drains while this query's builds run, so only the residual carries over.
  for (int l = 0; l < n_links; ++l) {
    if (fact_link_busy[l] > 0) {
      const double residual = std::max(0.0, link_backlog(l) - est.build);
      fact_phase = sim::MaxT(fact_phase, residual + fact_link_busy[l]);
    }
  }

  est.probe = fact_phase + latency_constants;
  est.total = est.init + est.build + est.probe + est.gather;
  return est;
}

}  // namespace hetex::plan
