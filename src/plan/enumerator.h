#ifndef HETEX_PLAN_ENUMERATOR_H_
#define HETEX_PLAN_ENUMERATOR_H_

#include <string>
#include <vector>

#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "sim/topology.h"

namespace hetex::plan {

/// One candidate plan: the policy seed that produced it plus the validated
/// HetPlan the lowering can run as-is.
struct PlanCandidate {
  std::string label;   ///< e.g. "het/split/lb/b4096"
  ExecPolicy policy;   ///< the BuildHetPlan seed
  HetPlan plan;
};

/// \brief Enumerates the candidate space the lowering already supports.
///
/// BuildHetPlan is the single enumeration seed: every candidate is a policy
/// variation run through it, so the search space is — by construction —
/// exactly the set of plans GraphBuilder accepts. Dimensions searched, within
/// the degrees of freedom `base` leaves open:
///   - probe-pipeline shape: fused vs split (filter stage + hash exchange),
///   - per-branch placement: CPU-only / GPU-only / hybrid (restricted by
///     `base.mode` and the topology's device inventory),
///   - per-exchange router policy: load-balance vs round-robin,
///   - CPU degree of parallelism: full vs half workers,
///   - segmentation granularity: base block_rows and a 4× coarser variant,
///   - per-join build placement: the GPU side pinned to each single GPU of
///     the fabric (multi-GPU topologies; the coster prices the asymmetric
///     PCIe/peer-link traffic of each pinning),
///   - asymmetric per-branch stages: the split shape with the filter stage on
///     CPU workers only and the join stage on the full mix (Fig. 1e).
///
/// A base policy with `use_hetexchange == false` pins the bare single-unit
/// plan (no search: the shape has no exchanges to vary). Every returned
/// candidate passed ValidateHetPlan.
///
/// `available_gpus`, when non-null, restricts GPU placement to that device
/// subset (the fault plane's surviving-device set): GPU/hybrid candidates pin
/// their policies to exactly those GPUs, and an empty set degrades the space
/// to CPU-only shapes. Null = all topology GPUs.
std::vector<PlanCandidate> EnumeratePlans(
    const QuerySpec& spec, const ExecPolicy& base, const sim::Topology& topo,
    const std::vector<int>* available_gpus = nullptr);

}  // namespace hetex::plan

#endif  // HETEX_PLAN_ENUMERATOR_H_
