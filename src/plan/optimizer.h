#ifndef HETEX_PLAN_OPTIMIZER_H_
#define HETEX_PLAN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/coster.h"
#include "plan/enumerator.h"

namespace hetex::plan {

/// One costed candidate of an optimization run.
struct RankedCandidate {
  PlanCandidate candidate;
  CostEstimate cost;
};

/// \brief The optimizer's output: every enumerated candidate with its cost
/// breakdown, ranked cheapest-first. `ranked.front()` is the picked plan.
struct OptimizeResult {
  std::vector<RankedCandidate> ranked;
  CardinalityEstimate cards;

  const PlanCandidate& best() const { return ranked.front().candidate; }

  /// Human-readable ranked candidate table (one line per candidate with the
  /// estimated virtual-time breakdown; the picked plan is marked).
  std::string ToString() const;
};

/// \brief The enumerator → coster → picker pipeline.
///
/// Enumerates the candidate HetPlans `base` leaves open (EnumeratePlans),
/// prices each with the virtual-time model (PlanCoster) and ranks them
/// cheapest-first. Candidates the coster cannot decompose are dropped;
/// failing every candidate is an error.
Status Optimize(const QuerySpec& spec, const ExecPolicy& base,
                const storage::Catalog& catalog, const sim::Topology& topo,
                OptimizeResult* out, PlanCoster::Options coster_options = {});

}  // namespace hetex::plan

#endif  // HETEX_PLAN_OPTIMIZER_H_
