#ifndef HETEX_PLAN_COST_PARAMS_H_
#define HETEX_PLAN_COST_PARAMS_H_

namespace hetex::plan {

/// \brief Single source of truth for the control-plane cost constants of the
/// HetExchange operators.
///
/// Three consumers read these numbers and must agree on them:
///   1. `sim::CostModel` seeds its runtime-simulation defaults from this struct
///      (`CostModel::Paper()` and the in-class member initializers),
///   2. `BuildHetPlan` stamps them onto plan nodes (via the topology's cost
///      model, so benchmark-scaled models — `ScaleFixedLatencies` — stay
///      consistent), and
///   3. `PlanCoster` prices candidate plans with the same stamps.
/// Editing a value here therefore changes the planner's estimates and the
/// runtime simulation together; they can never drift apart silently.
///
/// This header is dependency-free on purpose: it is included from both the
/// `sim` and `plan` layers.
struct CostParams {
  /// Router instantiation + thread pinning (the paper measures ~10 ms, §6.4).
  double router_init_latency = 1e-2;
  /// Per-message routing decision (control plane only, §3.1).
  double router_control_cost = 100e-9;
  /// Per-block segmentation cost (control plane only).
  double segmenter_block_cost = 20e-9;
  /// Spawning a host task (the gpu2cpu crossing, §3.2).
  double task_spawn_latency = 2e-6;
  /// Fixed per-transfer DMA setup cost on a PCIe link.
  double dma_latency = 1e-5;
  /// Fixed per-transfer setup cost on an NVLink-class GPU peer link. Peer DMA
  /// skips the host round-trip, so setup is cheaper than a PCIe transfer.
  double peer_dma_latency = 5e-6;
  /// Fixed per-hop cost of a cross-socket (UPI/QPI-class) cache-line transfer
  /// batch; charged once per delivered block that crosses sockets.
  double inter_socket_latency = 5e-7;
  /// Fixed cost of launching one GPU kernel.
  double kernel_launch_latency = 8e-6;
};

}  // namespace hetex::plan

#endif  // HETEX_PLAN_COST_PARAMS_H_
