#ifndef HETEX_PLAN_COSTER_H_
#define HETEX_PLAN_COSTER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "sim/topology.h"
#include "storage/table.h"

namespace hetex::plan {

/// \brief Cardinality and selectivity estimates for one query, derived from
/// table/column statistics.
///
/// Selectivities come from evaluating the query's predicates over a bounded
/// staging-row sample (`Table::SampleRows`); join survival fractions follow
/// from the FK-uniformity of a star schema (filtered build rows / build rows).
/// When staging was dropped, the catalog estimates already carried by the
/// QuerySpec (`build_rows_estimate`) are the fallback.
struct CardinalityEstimate {
  uint64_t fact_rows = 0;
  double fact_selectivity = 1.0;            ///< fact-filter survival fraction
  std::vector<uint64_t> build_input_rows;   ///< per join: build-table rows
  std::vector<uint64_t> build_rows;         ///< per join: filtered build side
  std::vector<double> join_selectivities;   ///< per join: probe survival fraction
  uint64_t output_rows = 0;                 ///< fact rows reaching aggregation

  std::string ToString() const;
};

CardinalityEstimate EstimateCardinalities(const QuerySpec& spec,
                                          const storage::Catalog& catalog);

/// \brief Estimated virtual-time cost of one candidate plan, with the phase
/// breakdown the optimizer records per candidate.
struct CostEstimate {
  sim::VTime total = 0;     ///< end-to-end virtual-time estimate
  sim::VTime init = 0;      ///< router bring-up watermark
  sim::VTime build = 0;     ///< hash-build phase (concurrent build networks)
  sim::VTime probe = 0;     ///< fact-pipeline phase (pipelined stages)
  sim::VTime transfer = 0;  ///< interconnect share of the critical path (diagnostic)
  sim::VTime gather = 0;    ///< final merge of partial aggregates

  std::string ToString() const;
};

/// \brief Prices candidate HetPlans by walking the DAG with the same
/// sim::CostModel / DeviceCaps constants the runtime simulation charges.
///
/// The coster mirrors the lowering's stage structure (pipeline spans between
/// exchanges) and the runtime's accounting: per-block work converted via
/// CostModel::WorkCost under the fluid bandwidth-share model, per-block fixed
/// costs (kernel launches, DMA setup, router control), serialized PCIe
/// transfers, and policy-dependent block distribution (round-robin assigns
/// blocks by rotation; load-balance greedily to the least-loaded instance —
/// the virtual-time analogue of the runtime's backlog balancing). It is an
/// estimate, not a simulation: cardinalities come from CardinalityEstimate,
/// not from execution.
struct CosterOptions {
  /// Rows per packed intermediate block — MUST be wired to the running
  /// system's block_bytes / 8 (QueryExecutor does). Sizes the block counts of
  /// non-segmenter-fed stages and mirrors the lowering's GPU staging clamp;
  /// the default only matches a system built with default 1 MiB blocks.
  uint64_t pack_block_rows = (1ull << 20) / 8;

  /// Per-PCIe-link backlog: virtual seconds of work other in-flight queries
  /// already have queued on each link at this session's arrival (index =
  /// Topology::PcieLinkOf). The scheduler's load signal — candidate plans that
  /// lean on a congested link are charged the queueing delay (DMA mem-moves
  /// and UVA kernel streams alike). Empty = idle server (the
  /// solo-optimization default).
  std::vector<double> link_backlog;

  /// Per-GPU-peer-link backlog (index = Topology::peer_link id): virtual
  /// seconds of work other in-flight queries already queued on each
  /// NVLink-class link at this session's arrival. Same semantics as
  /// link_backlog; empty = idle fabric.
  std::vector<double> peer_link_backlog;

  /// Inter-socket (UPI/QPI) link backlog in virtual seconds at this session's
  /// arrival. 0 = idle (or no inter-socket link modeled).
  double inter_socket_backlog = 0;

  /// Per-socket CPU contention: workers whose execution-phase intervals
  /// overlap the candidate's epoch on each socket's DRAM timeline (index =
  /// socket id; QueryExecutor fills it from DramServer::workers_overlapping).
  /// The runtime divides a socket's DRAM aggregate across the intervals a
  /// block actually crosses in virtual time, so the coster adds these to the
  /// candidate's own per-socket counts when pricing CPU fluid shares. Empty =
  /// idle server.
  std::vector<int> socket_backlog_workers;

  /// GPUs usable by candidate plans: the System health registry's surviving
  /// device set at this session's epoch (fault plane: lost devices drop out),
  /// minus any scheduler re-plan exclusions. nullopt = all topology GPUs (the
  /// fault-free default — behavior is byte-identical to pre-fault-plane
  /// optimization). An empty vector forces CPU-only candidates.
  std::optional<std::vector<int>> available_gpus;
};

class PlanCoster {
 public:
  using Options = CosterOptions;

  PlanCoster(const QuerySpec& spec, const storage::Catalog& catalog,
             const sim::Topology& topo, Options options = {});

  /// Estimates the virtual-time cost of `plan`. Fails (instead of guessing) on
  /// DAG shapes whose stage structure the walk cannot decompose.
  Result<CostEstimate> Cost(const HetPlan& plan) const;

  /// Uncontended virtual-time estimate of moving one `bytes`-sized block (in
  /// `cols` column transfers) from `src_gpu`'s memory into `dst_gpu`'s,
  /// mirroring Edge::MoveToNode's routing exactly: a single hop on the peer
  /// link when the fabric has one, two staged PCIe hops through host memory
  /// when it does not. The constants are the same ones DmaEngine charges, so
  /// estimated and measured route ordering agree.
  static sim::VTime EstimateGpuToGpuTransfer(const sim::Topology& topo,
                                             int src_gpu, int dst_gpu,
                                             uint64_t bytes, uint64_t cols = 1);

  const CardinalityEstimate& cards() const { return cards_; }

 private:
  const QuerySpec* spec_;
  const storage::Catalog* catalog_;
  const sim::Topology* topo_;
  Options options_;
  CardinalityEstimate cards_;
};

}  // namespace hetex::plan

#endif  // HETEX_PLAN_COSTER_H_
