#ifndef HETEX_PLAN_EXPR_H_
#define HETEX_PLAN_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "jit/program.h"

namespace hetex::plan {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Resolves a column name to a VM register during codegen. Implemented by the
/// executor's codegen context: fact columns lower to kLoadCol on first use (and
/// are cached, so filters only touch the columns they need — lazy/selective
/// loading falls out naturally), join-payload columns resolve to the registers
/// the probe's kHtLoadPayload defined.
class ColumnResolver {
 public:
  virtual ~ColumnResolver() = default;
  virtual int ResolveColumn(const std::string& name, jit::ProgramBuilder& b) = 0;
};

/// Row accessor for interpreted evaluation (reference evaluator, tests).
using RowGetter = std::function<int64_t(const std::string&)>;

/// \brief Scalar expression over int64 values (column refs, literals, arithmetic,
/// comparisons, boolean connectives).
///
/// Used twice: generated into pipeline VM code by the JIT engine, and evaluated
/// directly by the naive reference evaluator that validates query results.
class Expr {
 public:
  enum class Kind { kCol, kConst, kBin };
  enum class BinOp { kAdd, kSub, kMul, kDiv, kShl, kLt, kLe, kGt, kGe, kEq, kNe,
                     kAnd, kOr };

  static ExprPtr Col(std::string name);
  static ExprPtr Lit(int64_t value);
  static ExprPtr Bin(BinOp op, ExprPtr lhs, ExprPtr rhs);

  /// Emits VM code computing this expression; returns the result register.
  int Gen(jit::ProgramBuilder& b, ColumnResolver& cols) const;

  /// Interpreted evaluation (reference path).
  int64_t Eval(const RowGetter& row) const;

  void CollectColumns(std::set<std::string>* out) const;
  std::string ToString() const;

  Kind kind() const { return kind_; }
  /// Children of a kBin node (null otherwise). Exposed for planner walks
  /// (e.g. the coster's per-tuple micro-op estimates).
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  std::string col_;
  int64_t value_ = 0;
  BinOp op_ = BinOp::kAdd;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// Convenience constructors for readable query definitions.
inline ExprPtr Col(std::string name) { return Expr::Col(std::move(name)); }
inline ExprPtr Lit(int64_t v) { return Expr::Lit(v); }
inline ExprPtr Add(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kAdd, a, b); }
inline ExprPtr Sub(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kSub, a, b); }
inline ExprPtr Mul(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kMul, a, b); }
inline ExprPtr Shl(ExprPtr a, int64_t bits) {
  return Expr::Bin(Expr::BinOp::kShl, a, Expr::Lit(bits));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kLt, a, b); }
inline ExprPtr Le(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kLe, a, b); }
inline ExprPtr Gt(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kGt, a, b); }
inline ExprPtr Ge(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kGe, a, b); }
inline ExprPtr Eq(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kEq, a, b); }
inline ExprPtr Ne(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kNe, a, b); }
inline ExprPtr And(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kAnd, a, b); }
inline ExprPtr Or(ExprPtr a, ExprPtr b) { return Expr::Bin(Expr::BinOp::kOr, a, b); }
inline ExprPtr Between(ExprPtr v, int64_t lo, int64_t hi) {
  return And(Ge(v, Lit(lo)), Le(v, Lit(hi)));
}

}  // namespace hetex::plan

#endif  // HETEX_PLAN_EXPR_H_
