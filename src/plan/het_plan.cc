#include "plan/het_plan.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace hetex::plan {

ExprPtr CombineGroupKeys(const std::vector<ExprPtr>& keys) {
  HETEX_CHECK(!keys.empty());
  HETEX_CHECK(keys.size() * kGroupKeyBits <= 63) << "too many group-by keys";
  ExprPtr combined = keys[0];
  for (size_t i = 1; i < keys.size(); ++i) {
    combined = Add(Shl(combined, kGroupKeyBits), keys[i]);
  }
  return combined;
}

Layout ComputeLayout(const ExecPolicy& policy, const sim::Topology& topo) {
  Layout layout;
  layout.routers_present = policy.use_hetexchange;

  std::vector<int> gpus = policy.gpus;
  if (gpus.empty()) {
    for (int g = 0; g < topo.num_gpus(); ++g) gpus.push_back(g);
  }
  int cpu_workers = policy.cpu_workers < 0 ? topo.num_cores() : policy.cpu_workers;

  const bool want_cpu = policy.mode != ExecPolicy::Mode::kGpuOnly;
  const bool want_gpu = policy.mode != ExecPolicy::Mode::kCpuOnly;

  if (!policy.use_hetexchange) {
    // Bare Proteus: exactly one compute unit, no parallelization operators.
    if (want_gpu && !gpus.empty()) {
      layout.probe_instances.push_back(sim::DeviceId::Gpu(gpus[0]));
    } else {
      layout.probe_instances.push_back(sim::DeviceId::Cpu(0));
    }
  } else {
    if (want_cpu) {
      for (int w = 0; w < cpu_workers; ++w) {
        layout.probe_instances.push_back(sim::DeviceId::Cpu(topo.SocketOfCore(w)));
      }
    }
    if (want_gpu) {
      for (int g : gpus) {
        HETEX_CHECK(g >= 0 && g < topo.num_gpus()) << "no such GPU " << g;
        layout.probe_instances.push_back(sim::DeviceId::Gpu(g));
      }
    }
  }
  HETEX_CHECK(!layout.probe_instances.empty()) << "policy selects no compute units";

  // Build units: unique sockets + unique GPUs among the probe instances.
  std::unordered_set<int> sockets;
  std::unordered_set<int> unit_gpus;
  for (const auto& dev : layout.probe_instances) {
    if (dev.is_cpu()) {
      layout.has_cpu = true;
      if (sockets.insert(dev.index).second) {
        layout.build_units.push_back(dev);
      }
    } else {
      layout.has_gpu = true;
      if (unit_gpus.insert(dev.index).second) {
        layout.build_units.push_back(dev);
      }
    }
  }
  // GPU-only plans still need a host socket to drive gather (and builds stream
  // through the GPU itself).
  layout.gather_socket = layout.has_cpu ? layout.probe_instances[0].index
                                        : topo.HostSocketOf(layout.probe_instances[0]);
  return layout;
}

const char* HetOpNode::KindName(Kind kind) {
  switch (kind) {
    case Kind::kSegmenter: return "segmenter";
    case Kind::kRouter: return "router";
    case Kind::kMemMove: return "mem-move";
    case Kind::kCpu2Gpu: return "cpu2gpu";
    case Kind::kGpu2Cpu: return "gpu2cpu";
    case Kind::kPack: return "pack";
    case Kind::kHashPack: return "hash-pack";
    case Kind::kUnpack: return "unpack";
    case Kind::kFilter: return "filter";
    case Kind::kProject: return "project";
    case Kind::kJoinBuild: return "hashjoin-build";
    case Kind::kJoinProbe: return "hashjoin-probe";
    case Kind::kReduceLocal: return "reduce(local)";
    case Kind::kGroupByLocal: return "groupby(local)";
    case Kind::kGather: return "gather";
    case Kind::kResult: return "result";
  }
  return "?";
}

namespace {

class PlanBuilder {
 public:
  explicit PlanBuilder(HetPlan* plan) : plan_(plan) {}

  int Add(HetOpNode::Kind kind, sim::DeviceType device, std::string detail,
          std::vector<int> children, int dop = 1) {
    HetOpNode node;
    node.kind = kind;
    node.device = device;
    node.detail = std::move(detail);
    node.children = std::move(children);
    node.dop = dop;
    plan_->nodes.push_back(std::move(node));
    return static_cast<int>(plan_->nodes.size()) - 1;
  }

 private:
  HetPlan* plan_;
};

void PrintNode(const HetPlan& plan, int id, int depth,
               std::unordered_set<int>* seen, std::ostringstream& os) {
  const HetOpNode& n = plan.node(id);
  for (int i = 0; i < depth; ++i) os << "  ";
  os << HetOpNode::KindName(n.kind) << " [" << (n.device == sim::DeviceType::kCpu
                                                    ? "cpu"
                                                    : "gpu");
  if (n.dop != 1) os << " x" << n.dop;
  os << "]";
  if (!n.detail.empty()) os << " " << n.detail;
  if (!seen->insert(id).second) {
    os << "  (^ see node above)\n";
    return;
  }
  os << "\n";
  for (int c : n.children) PrintNode(plan, c, depth + 1, seen, os);
}

}  // namespace

std::string HetPlan::ToString() const {
  std::ostringstream os;
  std::unordered_set<int> seen;
  PrintNode(*this, root, 0, &seen, os);
  return os.str();
}

HetPlan BuildHetPlan(const QuerySpec& spec, const ExecPolicy& policy,
                     const sim::Topology& topo) {
  using Kind = HetOpNode::Kind;
  constexpr auto kCpu = sim::DeviceType::kCpu;
  constexpr auto kGpu = sim::DeviceType::kGpu;

  HetPlan plan;
  PlanBuilder b(&plan);
  const Layout layout = ComputeLayout(policy, topo);

  // --- Build subplans: one shared segmenter+broadcast per join, one build chain
  // per participating device unit.
  std::vector<std::vector<int>> cpu_builds;  // per join: build nodes on CPU units
  std::vector<std::vector<int>> gpu_builds;
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const JoinSpec& join = spec.joins[j];
    const int seg = b.Add(Kind::kSegmenter, kCpu, join.build_table, {});
    int feed = seg;
    if (layout.routers_present) {
      feed = b.Add(Kind::kRouter, kCpu, "policy=broadcast(target-id)", {seg});
    }
    cpu_builds.emplace_back();
    gpu_builds.emplace_back();
    for (const auto& unit : layout.build_units) {
      int chain = feed;
      if (layout.routers_present) {
        chain = b.Add(Kind::kMemMove, kCpu, "broadcast to " + unit.ToString(),
                      {chain});
      }
      const auto dev_type = unit.type;
      if (unit.is_gpu()) {
        chain = b.Add(Kind::kCpu2Gpu, kGpu, "launch on " + unit.ToString(), {chain});
      }
      chain = b.Add(Kind::kUnpack, dev_type, "", {chain});
      if (join.build_filter != nullptr) {
        chain = b.Add(Kind::kFilter, dev_type, join.build_filter->ToString(),
                      {chain});
      }
      chain = b.Add(Kind::kJoinBuild, dev_type,
                    "ht[" + std::to_string(j) + "] on " + unit.ToString(), {chain});
      (unit.is_gpu() ? gpu_builds : cpu_builds)[j].push_back(chain);
    }
  }

  // --- Probe side: segmenter -> router -> per device-type branch.
  const int fact_seg = b.Add(Kind::kSegmenter, kCpu, spec.fact_table, {});
  int fact_feed = fact_seg;
  if (layout.routers_present) {
    fact_feed = b.Add(Kind::kRouter, kCpu,
                      policy.load_balance ? "policy=load-balance"
                                          : "policy=round-robin",
                      {fact_seg}, static_cast<int>(layout.probe_instances.size()));
  }

  auto build_branch = [&](sim::DeviceType dev_type, int dop) -> int {
    int chain = fact_feed;
    if (layout.routers_present) {
      chain = b.Add(Kind::kMemMove, kCpu, "to consumer-local memory", {chain}, dop);
    }
    if (dev_type == kGpu) {
      chain = b.Add(Kind::kCpu2Gpu, kGpu,
                    layout.routers_present ? "" : "UVA zero-copy", {chain}, dop);
    }
    chain = b.Add(Kind::kUnpack, dev_type, "", {chain}, dop);
    if (spec.fact_filter != nullptr) {
      chain = b.Add(Kind::kFilter, dev_type, spec.fact_filter->ToString(), {chain},
                    dop);
    }
    if (policy.split_probe_stage && layout.routers_present) {
      // Fig. 1e shape: filter stage, hash-pack, hash router, then the join stage.
      const std::string key =
          spec.joins.empty() ? "tuple-hash" : spec.joins[0].probe_key;
      chain = b.Add(Kind::kHashPack, dev_type, "by hash(" + key + ")", {chain}, dop);
      if (dev_type == kGpu) {
        chain = b.Add(Kind::kGpu2Cpu, kCpu, "", {chain}, dop);
      }
      chain = b.Add(Kind::kRouter, kCpu, "policy=hash", {chain}, dop);
      chain = b.Add(Kind::kMemMove, kCpu, "to consumer-local memory", {chain}, dop);
      if (dev_type == kGpu) {
        chain = b.Add(Kind::kCpu2Gpu, kGpu, "", {chain}, dop);
      }
      chain = b.Add(Kind::kUnpack, dev_type, "", {chain}, dop);
    }
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      std::vector<int> children = {chain};
      const auto& builds = dev_type == kGpu ? gpu_builds[j] : cpu_builds[j];
      children.insert(children.end(), builds.begin(), builds.end());
      chain = b.Add(Kind::kJoinProbe, dev_type,
                    spec.joins[j].build_table + "." + spec.joins[j].build_key +
                        " = " + spec.joins[j].probe_key,
                    std::move(children), dop);
    }
    chain = b.Add(spec.group_by.empty() ? Kind::kReduceLocal : Kind::kGroupByLocal,
                  dev_type, "", {chain}, dop);
    chain = b.Add(Kind::kPack, dev_type, "partials", {chain}, dop);
    if (dev_type == kGpu) {
      chain = b.Add(Kind::kGpu2Cpu, kCpu, "async device->host queue", {chain}, dop);
    }
    return chain;
  };

  int cpu_dop = 0;
  int gpu_dop = 0;
  for (const auto& dev : layout.probe_instances) {
    (dev.is_cpu() ? cpu_dop : gpu_dop) += 1;
  }

  std::vector<int> branch_tops;
  if (cpu_dop > 0) branch_tops.push_back(build_branch(kCpu, cpu_dop));
  if (gpu_dop > 0) branch_tops.push_back(build_branch(kGpu, gpu_dop));

  int top;
  if (layout.routers_present) {
    top = b.Add(Kind::kRouter, kCpu, "policy=union", std::move(branch_tops));
    top = b.Add(Kind::kMemMove, kCpu, "partials to gather", {top});
  } else {
    HETEX_CHECK(branch_tops.size() == 1);
    top = branch_tops[0];
  }
  top = b.Add(Kind::kGather, kCpu,
              spec.group_by.empty() ? "global reduce" : "global group-by merge",
              {top});
  plan.root = b.Add(Kind::kResult, kCpu, spec.name, {top});
  return plan;
}

namespace {

bool IsRelational(HetOpNode::Kind k) {
  using Kind = HetOpNode::Kind;
  return k == Kind::kFilter || k == Kind::kProject || k == Kind::kJoinBuild ||
         k == Kind::kJoinProbe || k == Kind::kReduceLocal ||
         k == Kind::kGroupByLocal;
}

bool IsBlockProducer(HetOpNode::Kind k) {
  using Kind = HetOpNode::Kind;
  return k == Kind::kSegmenter || k == Kind::kRouter || k == Kind::kMemMove ||
         k == Kind::kCpu2Gpu || k == Kind::kGpu2Cpu || k == Kind::kPack ||
         k == Kind::kHashPack;
}

}  // namespace

Status ValidateHetPlan(const HetPlan& plan) {
  using Kind = HetOpNode::Kind;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const HetOpNode& n = plan.nodes[i];

    // Rule 2: device changes only at crossing operators.
    for (int c : n.children) {
      const HetOpNode& child = plan.node(c);
      if (n.kind == Kind::kJoinProbe && &child != &plan.node(n.children[0])) {
        continue;  // build-side children are separate pipeline networks
      }
      if (child.device != n.device &&
          n.kind != Kind::kCpu2Gpu && n.kind != Kind::kGpu2Cpu) {
        return Status::Internal("device transition without crossing operator at " +
                                std::string(HetOpNode::KindName(n.kind)));
      }
    }
    if (n.kind == Kind::kCpu2Gpu &&
        (n.device != sim::DeviceType::kGpu ||
         plan.node(n.children.at(0)).device != sim::DeviceType::kCpu)) {
      return Status::Internal("cpu2gpu must move execution from CPU to GPU");
    }
    if (n.kind == Kind::kGpu2Cpu &&
        (n.device != sim::DeviceType::kCpu ||
         plan.node(n.children.at(0)).device != sim::DeviceType::kGpu)) {
      return Status::Internal("gpu2cpu must move execution from GPU to CPU");
    }

    // Rule 1: relational operators consume unpacked, tuple-at-a-time input.
    if (IsRelational(n.kind) && !n.children.empty()) {
      int c = n.children[0];
      while (true) {
        const HetOpNode& child = plan.node(c);
        if (child.kind == Kind::kUnpack || IsRelational(child.kind)) break;
        if (IsBlockProducer(child.kind)) {
          return Status::Internal(
              std::string(HetOpNode::KindName(n.kind)) +
              " consumes packed blocks without an unpack converter");
        }
        if (child.children.empty()) break;
        c = child.children[0];
      }
    }

    // Rule 3: a mem-move fixes data locality before execution crosses to a GPU.
    if (n.kind == Kind::kCpu2Gpu && n.detail.find("UVA") == std::string::npos) {
      const HetOpNode& below = plan.node(n.children.at(0));
      if (below.kind != Kind::kMemMove) {
        return Status::Internal("cpu2gpu without a mem-move fixing locality below");
      }
    }

    // Rule 4: hash routers require hash-homogeneous blocks from a hash-pack.
    if (n.kind == Kind::kRouter && n.detail.find("hash") != std::string::npos) {
      for (int c : n.children) {
        const HetOpNode* child = &plan.node(c);
        if (child->kind == Kind::kGpu2Cpu) child = &plan.node(child->children.at(0));
        if (child->kind != Kind::kHashPack) {
          return Status::Internal("hash router fed by non-hash-pack producer");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace hetex::plan
