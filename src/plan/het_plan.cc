#include "plan/het_plan.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace hetex::plan {

ExprPtr CombineGroupKeys(const std::vector<ExprPtr>& keys) {
  HETEX_CHECK(!keys.empty());
  HETEX_CHECK(keys.size() * kGroupKeyBits <= 63) << "too many group-by keys";
  ExprPtr combined = keys[0];
  for (size_t i = 1; i < keys.size(); ++i) {
    combined = Add(Shl(combined, kGroupKeyBits), keys[i]);
  }
  return combined;
}

Layout ComputeLayout(const ExecPolicy& policy, const sim::Topology& topo) {
  Layout layout;
  layout.routers_present = policy.use_hetexchange;

  std::vector<int> gpus = policy.gpus;
  if (gpus.empty()) {
    for (int g = 0; g < topo.num_gpus(); ++g) gpus.push_back(g);
  }
  int cpu_workers = policy.cpu_workers < 0 ? topo.num_cores() : policy.cpu_workers;

  const bool want_cpu = policy.mode != ExecPolicy::Mode::kGpuOnly;
  const bool want_gpu = policy.mode != ExecPolicy::Mode::kCpuOnly;

  if (!policy.use_hetexchange) {
    // Bare Proteus: exactly one compute unit, no parallelization operators.
    if (want_gpu && !gpus.empty()) {
      layout.probe_instances.push_back(sim::DeviceId::Gpu(gpus[0]));
    } else {
      layout.probe_instances.push_back(sim::DeviceId::Cpu(0));
    }
  } else {
    if (want_cpu) {
      for (int w = 0; w < cpu_workers; ++w) {
        layout.probe_instances.push_back(sim::DeviceId::Cpu(topo.SocketOfCore(w)));
      }
    }
    if (want_gpu) {
      for (int g : gpus) {
        HETEX_CHECK(g >= 0 && g < topo.num_gpus()) << "no such GPU " << g;
        layout.probe_instances.push_back(sim::DeviceId::Gpu(g));
      }
    }
  }
  HETEX_CHECK(!layout.probe_instances.empty()) << "policy selects no compute units";

  // Build units: unique sockets + unique GPUs among the probe instances.
  std::unordered_set<int> sockets;
  std::unordered_set<int> unit_gpus;
  for (const auto& dev : layout.probe_instances) {
    if (dev.is_cpu()) {
      layout.has_cpu = true;
      if (sockets.insert(dev.index).second) {
        layout.build_units.push_back(dev);
      }
    } else {
      layout.has_gpu = true;
      if (unit_gpus.insert(dev.index).second) {
        layout.build_units.push_back(dev);
      }
    }
  }
  // GPU-only plans still need a host socket to drive gather (and builds stream
  // through the GPU itself).
  layout.gather_socket = layout.has_cpu ? layout.probe_instances[0].index
                                        : topo.HostSocketOf(layout.probe_instances[0]);
  return layout;
}

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin: return "round-robin";
    case RouterPolicy::kLoadBalance: return "load-balance";
    case RouterPolicy::kHash: return "hash";
    case RouterPolicy::kBroadcast: return "broadcast";
    case RouterPolicy::kUnion: return "union";
  }
  return "?";
}

const char* HetOpNode::KindName(Kind kind) {
  switch (kind) {
    case Kind::kSegmenter: return "segmenter";
    case Kind::kRouter: return "router";
    case Kind::kMemMove: return "mem-move";
    case Kind::kCpu2Gpu: return "cpu2gpu";
    case Kind::kGpu2Cpu: return "gpu2cpu";
    case Kind::kPack: return "pack";
    case Kind::kHashPack: return "hash-pack";
    case Kind::kUnpack: return "unpack";
    case Kind::kFilter: return "filter";
    case Kind::kProject: return "project";
    case Kind::kJoinBuild: return "hashjoin-build";
    case Kind::kJoinProbe: return "hashjoin-probe";
    case Kind::kReduceLocal: return "reduce(local)";
    case Kind::kGroupByLocal: return "groupby(local)";
    case Kind::kGather: return "gather";
    case Kind::kResult: return "result";
  }
  return "?";
}

namespace {

class PlanBuilder {
 public:
  explicit PlanBuilder(HetPlan* plan) : plan_(plan) {}

  int Add(HetOpNode::Kind kind, sim::DeviceType device, std::string detail,
          std::vector<int> children, int dop = 1) {
    HetOpNode node;
    node.kind = kind;
    node.device = device;
    node.detail = std::move(detail);
    node.children = std::move(children);
    node.dop = dop;
    plan_->nodes.push_back(std::move(node));
    return static_cast<int>(plan_->nodes.size()) - 1;
  }

 private:
  HetPlan* plan_;
};

void PrintNode(const HetPlan& plan, int id, int depth,
               std::unordered_set<int>* seen, std::ostringstream& os) {
  const HetOpNode& n = plan.node(id);
  for (int i = 0; i < depth; ++i) os << "  ";
  os << HetOpNode::KindName(n.kind) << " [" << (n.device == sim::DeviceType::kCpu
                                                    ? "cpu"
                                                    : "gpu");
  if (n.dop != 1) os << " x" << n.dop;
  os << "]";
  if (n.kind == HetOpNode::Kind::kRouter) {
    // Print the stamped policy — the field the lowering executes — so the
    // rendered plan cannot disagree with the runtime graph; keep any detail
    // that is not just a cosmetic restatement of it.
    os << " policy=" << RouterPolicyName(n.policy);
    if (!n.detail.empty() && n.detail.rfind("policy=", 0) != 0) {
      os << " " << n.detail;
    }
  } else if (!n.detail.empty()) {
    os << " " << n.detail;
  }
  if (!seen->insert(id).second) {
    os << "  (^ see node above)\n";
    return;
  }
  os << "\n";
  for (int c : n.children) PrintNode(plan, c, depth + 1, seen, os);
}

}  // namespace

std::string HetPlan::ToString() const {
  std::ostringstream os;
  std::unordered_set<int> seen;
  PrintNode(*this, root, 0, &seen, os);
  return os.str();
}

HetPlan BuildHetPlan(const QuerySpec& spec, const ExecPolicy& policy,
                     const sim::Topology& topo) {
  using Kind = HetOpNode::Kind;
  constexpr auto kCpu = sim::DeviceType::kCpu;
  constexpr auto kGpu = sim::DeviceType::kGpu;

  HetPlan plan;
  plan.channel_capacity = policy.channel_capacity;
  PlanBuilder b(&plan);
  const Layout layout = ComputeLayout(policy, topo);
  const sim::CostModel& cm = topo.cost_model();

  auto stamp_router = [&](int id, RouterPolicy router_policy) {
    HetOpNode& n = plan.node(id);
    n.policy = router_policy;
    n.control_cost = cm.router_control_cost;
    n.init_latency = cm.router_init_latency;
  };
  auto stamp_segmenter = [&](int id, const std::string& table) {
    HetOpNode& n = plan.node(id);
    n.table = table;
    n.block_rows = policy.block_rows;
    n.per_block_cost = cm.segmenter_block_cost;
  };
  auto place = [&](int id, const std::vector<sim::DeviceId>& instances) {
    plan.node(id).placement = instances;
    return id;
  };

  // --- Build subplans: one shared segmenter+broadcast per join, one build chain
  // per participating device unit.
  std::vector<std::vector<int>> cpu_builds;  // per join: build nodes on CPU units
  std::vector<std::vector<int>> gpu_builds;
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const JoinSpec& join = spec.joins[j];
    const int seg = b.Add(Kind::kSegmenter, kCpu, join.build_table, {});
    stamp_segmenter(seg, join.build_table);
    int feed = seg;
    if (layout.routers_present) {
      feed = b.Add(Kind::kRouter, kCpu, "policy=broadcast(target-id)", {seg});
      stamp_router(feed, RouterPolicy::kBroadcast);
    }
    cpu_builds.emplace_back();
    gpu_builds.emplace_back();
    for (const auto& unit : layout.build_units) {
      int chain = feed;
      if (layout.routers_present) {
        chain = b.Add(Kind::kMemMove, kCpu, "broadcast to " + unit.ToString(),
                      {chain});
      }
      const auto dev_type = unit.type;
      if (unit.is_gpu()) {
        // Without routers there is no mem-move below: the launch addresses host
        // data in place over UVA (waives the §3.3 rule-3 mem-move requirement).
        chain = b.Add(Kind::kCpu2Gpu, kGpu,
                      layout.routers_present
                          ? "launch on " + unit.ToString()
                          : "UVA zero-copy launch on " + unit.ToString(),
                      {chain});
        plan.node(chain).uva = !layout.routers_present;
      }
      chain = place(b.Add(Kind::kUnpack, dev_type, "", {chain}), {unit});
      if (join.build_filter != nullptr) {
        chain = place(b.Add(Kind::kFilter, dev_type, join.build_filter->ToString(),
                            {chain}),
                      {unit});
      }
      chain = place(b.Add(Kind::kJoinBuild, dev_type,
                          "ht[" + std::to_string(j) + "] on " + unit.ToString(),
                          {chain}),
                    {unit});
      plan.node(chain).join_id = static_cast<int>(j);
      (unit.is_gpu() ? gpu_builds : cpu_builds)[j].push_back(chain);
    }
  }

  // --- Probe side: segmenter -> router -> per device-type branch.
  const int fact_seg = b.Add(Kind::kSegmenter, kCpu, spec.fact_table, {});
  stamp_segmenter(fact_seg, spec.fact_table);
  int fact_feed = fact_seg;
  if (layout.routers_present) {
    fact_feed = b.Add(Kind::kRouter, kCpu,
                      policy.load_balance ? "policy=load-balance"
                                          : "policy=round-robin",
                      {fact_seg}, static_cast<int>(layout.probe_instances.size()));
    stamp_router(fact_feed, policy.load_balance ? RouterPolicy::kLoadBalance
                                                : RouterPolicy::kRoundRobin);
  }

  // Per-device-type probe instances: the placement of each branch's span nodes.
  std::vector<sim::DeviceId> cpu_instances;
  std::vector<sim::DeviceId> gpu_instances;
  for (const auto& dev : layout.probe_instances) {
    (dev.is_cpu() ? cpu_instances : gpu_instances).push_back(dev);
  }
  const bool split = policy.split_probe_stage && layout.routers_present;

  // Transport from `feed` onto a branch's device type: mem-move + crossing +
  // unpack (the consumer-side converter sandwich of every exchange).
  auto enter_branch = [&](int feed, sim::DeviceType dev_type, int dop) -> int {
    int chain = feed;
    if (layout.routers_present) {
      chain = b.Add(Kind::kMemMove, kCpu, "to consumer-local memory", {chain}, dop);
    }
    if (dev_type == kGpu) {
      chain = b.Add(Kind::kCpu2Gpu, kGpu,
                    layout.routers_present ? "" : "UVA zero-copy", {chain}, dop);
      plan.node(chain).uva = !layout.routers_present;
    }
    return b.Add(Kind::kUnpack, dev_type, "", {chain}, dop);
  };

  // Join/aggregate/pack tail shared by fused and split (stage B) branches.
  auto build_tail = [&](int chain, sim::DeviceType dev_type,
                        const std::vector<sim::DeviceId>& instances) -> int {
    const int dop = static_cast<int>(instances.size());
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      std::vector<int> children = {chain};
      const auto& builds = dev_type == kGpu ? gpu_builds[j] : cpu_builds[j];
      children.insert(children.end(), builds.begin(), builds.end());
      chain = place(b.Add(Kind::kJoinProbe, dev_type,
                          spec.joins[j].build_table + "." + spec.joins[j].build_key +
                              " = " + spec.joins[j].probe_key,
                          std::move(children), dop),
                    instances);
      plan.node(chain).join_id = static_cast<int>(j);
    }
    chain = place(b.Add(spec.group_by.empty() ? Kind::kReduceLocal
                                              : Kind::kGroupByLocal,
                        dev_type, "", {chain}, dop),
                  instances);
    chain = place(b.Add(Kind::kPack, dev_type, "partials", {chain}, dop), instances);
    if (dev_type == kGpu) {
      chain = b.Add(Kind::kGpu2Cpu, kCpu, "async device->host queue", {chain}, dop);
      plan.node(chain).crossing_latency = cm.task_spawn_latency;
    }
    return chain;
  };

  std::vector<std::vector<sim::DeviceId>*> branches;
  if (!cpu_instances.empty()) branches.push_back(&cpu_instances);
  if (!gpu_instances.empty()) branches.push_back(&gpu_instances);

  // Branch head shared by the fused arm and split stage A: enter the branch
  // off `feed` and apply the fact filter.
  auto branch_head = [&](int feed,
                         const std::vector<sim::DeviceId>& instances) -> int {
    const auto dev_type = instances.front().type;
    const int dop = static_cast<int>(instances.size());
    int chain = place(enter_branch(feed, dev_type, dop), instances);
    if (spec.fact_filter != nullptr) {
      chain = place(b.Add(Kind::kFilter, dev_type, spec.fact_filter->ToString(),
                          {chain}, dop),
                    instances);
    }
    return chain;
  };

  std::vector<int> branch_tops;
  if (!split) {
    for (const auto* instances : branches) {
      const int chain = branch_head(fact_feed, *instances);
      branch_tops.push_back(
          build_tail(chain, instances->front().type, *instances));
    }
  } else {
    // Fig. 1e shape: per-branch filter stage + hash-pack, one shared hash
    // router (the exchange), then per-branch join stages.
    const int buckets = policy.hash_router_buckets > 0
                            ? policy.hash_router_buckets
                            : static_cast<int>(layout.probe_instances.size());
    const std::string key =
        spec.joins.empty() ? "tuple-hash" : spec.joins[0].probe_key;
    // Asymmetric per-branch stages: stage A (filter + hash-pack) on the CPU
    // branch only while stage B keeps the full mix — the paper's Fig. 1e with
    // the cheap scan on cores and the joins on accelerators. Falls back to
    // the symmetric split when only one unit class is present.
    const bool asym = policy.stage_a_cpu_only && !cpu_instances.empty() &&
                      !gpu_instances.empty();
    const std::vector<std::vector<sim::DeviceId>*> stage_a_branches =
        asym ? std::vector<std::vector<sim::DeviceId>*>{&cpu_instances}
             : branches;
    std::vector<int> stage_a_tops;
    for (const auto* instances : stage_a_branches) {
      const auto dev_type = instances->front().type;
      const int dop = static_cast<int>(instances->size());
      int chain = branch_head(fact_feed, *instances);
      chain = place(b.Add(Kind::kHashPack, dev_type, "by hash(" + key + ")",
                          {chain}, dop),
                    *instances);
      plan.node(chain).n_buckets = buckets;
      if (dev_type == kGpu) {
        chain = b.Add(Kind::kGpu2Cpu, kCpu, "", {chain}, dop);
      }
      stage_a_tops.push_back(chain);
    }
    const int hash_router =
        b.Add(Kind::kRouter, kCpu, "policy=hash", std::move(stage_a_tops),
              static_cast<int>(layout.probe_instances.size()));
    stamp_router(hash_router, RouterPolicy::kHash);
    for (const auto* instances : branches) {
      const auto dev_type = instances->front().type;
      const int dop = static_cast<int>(instances->size());
      const int chain =
          place(enter_branch(hash_router, dev_type, dop), *instances);
      branch_tops.push_back(build_tail(chain, dev_type, *instances));
    }
  }

  int top;
  if (layout.routers_present) {
    top = b.Add(Kind::kRouter, kCpu, "policy=union", std::move(branch_tops));
    stamp_router(top, RouterPolicy::kUnion);
    top = b.Add(Kind::kMemMove, kCpu, "partials to gather", {top});
  } else {
    HETEX_CHECK(branch_tops.size() == 1);
    top = branch_tops[0];
  }
  top = place(b.Add(Kind::kGather, kCpu,
                    spec.group_by.empty() ? "global reduce"
                                          : "global group-by merge",
                    {top}),
              {sim::DeviceId::Cpu(layout.gather_socket)});
  plan.root = b.Add(Kind::kResult, kCpu, spec.name, {top});
  return plan;
}

namespace {

bool IsRelational(HetOpNode::Kind k) {
  using Kind = HetOpNode::Kind;
  return k == Kind::kFilter || k == Kind::kProject || k == Kind::kJoinBuild ||
         k == Kind::kJoinProbe || k == Kind::kReduceLocal ||
         k == Kind::kGroupByLocal;
}

bool IsBlockProducer(HetOpNode::Kind k) {
  using Kind = HetOpNode::Kind;
  return k == Kind::kSegmenter || k == Kind::kRouter || k == Kind::kMemMove ||
         k == Kind::kCpu2Gpu || k == Kind::kGpu2Cpu || k == Kind::kPack ||
         k == Kind::kHashPack;
}

}  // namespace

Status ValidatePolicyForTopology(const ExecPolicy& policy,
                                 const sim::Topology& topo) {
  const bool wants_gpu = policy.mode != ExecPolicy::Mode::kCpuOnly;
  if (!wants_gpu) return Status::OK();
  if (topo.num_gpus() == 0 &&
      (policy.mode == ExecPolicy::Mode::kGpuOnly || !policy.gpus.empty())) {
    return Status::InvalidArgument(
        "no-GPU topology: policy requests GPU placement but the topology has "
        "0 GPUs (use a CPU-only policy, or a hybrid with no pinned GPUs)");
  }
  for (int g : policy.gpus) {
    if (g < 0 || g >= topo.num_gpus()) {
      return Status::InvalidArgument(
          "policy names GPU " + std::to_string(g) + " but the topology has " +
          std::to_string(topo.num_gpus()) + " GPU(s)");
    }
  }
  return Status::OK();
}

Status ValidateHetPlan(const HetPlan& plan) {
  using Kind = HetOpNode::Kind;
  // Every rejection names the offending node ("node N (kind)") so a failing
  // hand-mutated plan surfaced through QueryResult::status pinpoints which
  // node broke which rule instead of describing the rule alone.
  const auto node_ref = [](size_t id, const HetOpNode& n) {
    return "node " + std::to_string(id) + " (" +
           std::string(HetOpNode::KindName(n.kind)) + ")";
  };
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const HetOpNode& n = plan.nodes[i];

    // Rule 2: device changes only at crossing operators.
    for (int c : n.children) {
      const HetOpNode& child = plan.node(c);
      if (n.kind == Kind::kJoinProbe && &child != &plan.node(n.children[0])) {
        continue;  // build-side children are separate pipeline networks
      }
      if (child.device != n.device &&
          n.kind != Kind::kCpu2Gpu && n.kind != Kind::kGpu2Cpu) {
        return Status::Internal("rule 2: device transition without a crossing "
                                "operator at " + node_ref(i, n));
      }
    }
    if (n.kind == Kind::kCpu2Gpu || n.kind == Kind::kGpu2Cpu) {
      // Hand-mutated plans can reach here with a childless crossing; rules
      // 2-4 below dereference the input, so reject instead of aborting.
      if (n.children.empty()) {
        return Status::Internal("device crossing " + node_ref(i, n) +
                                " has no input");
      }
    }

    // Stamped placement is what the lowering instantiates: a dop annotation
    // that disagrees with it would make the printed plan lie about the
    // runtime graph's width.
    if (!n.placement.empty() && n.dop != static_cast<int>(n.placement.size())) {
      return Status::Internal(node_ref(i, n) +
                              ": dop disagrees with its placement stamp");
    }
    if (n.kind == Kind::kCpu2Gpu &&
        (n.device != sim::DeviceType::kGpu ||
         plan.node(n.children.at(0)).device != sim::DeviceType::kCpu)) {
      return Status::Internal("rule 2: " + node_ref(i, n) +
                              " must move execution from CPU to GPU");
    }
    if (n.kind == Kind::kGpu2Cpu &&
        (n.device != sim::DeviceType::kCpu ||
         plan.node(n.children.at(0)).device != sim::DeviceType::kGpu)) {
      return Status::Internal("rule 2: " + node_ref(i, n) +
                              " must move execution from GPU to CPU");
    }

    // Rule 1: relational operators consume unpacked, tuple-at-a-time input.
    if (IsRelational(n.kind) && !n.children.empty()) {
      int c = n.children[0];
      size_t steps = 0;
      while (true) {
        if (++steps > plan.nodes.size()) {
          return Status::Internal("plan contains a cycle below " + node_ref(i, n));
        }
        const HetOpNode& child = plan.node(c);
        if (child.kind == Kind::kUnpack || IsRelational(child.kind)) break;
        if (IsBlockProducer(child.kind)) {
          return Status::Internal(
              "rule 1: " + node_ref(i, n) +
              " consumes packed blocks from " +
              node_ref(static_cast<size_t>(c), child) +
              " without an unpack converter");
        }
        if (child.children.empty()) break;
        c = child.children[0];
      }
    }

    // Rule 3: a mem-move fixes data locality before execution crosses to a GPU
    // (unless the crossing explicitly addresses producer memory over UVA).
    if (n.kind == Kind::kCpu2Gpu && !IsUvaCrossing(n)) {
      const HetOpNode& below = plan.node(n.children.at(0));
      if (below.kind != Kind::kMemMove) {
        return Status::Internal(
            "rule 3: " + node_ref(i, n) + " is not marked UVA and has no "
            "mem-move fixing locality below (found " +
            node_ref(static_cast<size_t>(n.children.at(0)), below) + ")");
      }
    }

    // Rule 4: hash routers require hash-homogeneous blocks from a hash-pack.
    // The stamped policy is what the lowering executes; the detail string is
    // checked too so hand-written plans can't dodge the rule cosmetically.
    if (n.kind == Kind::kRouter && (n.policy == RouterPolicy::kHash ||
                                    n.detail.find("hash") != std::string::npos)) {
      for (int c : n.children) {
        const HetOpNode* child = &plan.node(c);
        int child_id = c;
        // A childless gpu2cpu was rejected above when *it* was visited, but it
        // may appear later in the node array than this router: guard the deref.
        if (child->kind == Kind::kGpu2Cpu && !child->children.empty()) {
          child_id = child->children.at(0);
          child = &plan.node(child_id);
        }
        if (child->kind != Kind::kHashPack) {
          return Status::Internal(
              "rule 4: hash router " + node_ref(i, n) + " fed by non-hash-pack "
              "producer " + node_ref(static_cast<size_t>(child_id), *child));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace hetex::plan
