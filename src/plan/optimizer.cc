#include "plan/optimizer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hetex::plan {

std::string OptimizeResult::ToString() const {
  std::ostringstream os;
  os << "candidates (cheapest first), " << cards.ToString() << ":\n";
  for (size_t i = 0; i < ranked.size(); ++i) {
    char est[64];
    std::snprintf(est, sizeof(est), "%.6f", ranked[i].cost.total);
    os << (i == 0 ? "  * " : "    ") << ranked[i].candidate.label << "  est="
       << est << "s  [" << ranked[i].cost.ToString() << "]\n";
  }
  return os.str();
}

Status Optimize(const QuerySpec& spec, const ExecPolicy& base,
                const storage::Catalog& catalog, const sim::Topology& topo,
                OptimizeResult* out, PlanCoster::Options coster_options) {
  *out = OptimizeResult{};
  const std::vector<int>* available_gpus =
      coster_options.available_gpus.has_value()
          ? &coster_options.available_gpus.value()
          : nullptr;
  std::vector<PlanCandidate> candidates =
      EnumeratePlans(spec, base, topo, available_gpus);
  if (candidates.empty()) {
    // Name the no-GPU cases: a GPU-pinned base on a GPU-less topology (or a
    // fully-lost device set) yields an empty space by design, and the error
    // should say so instead of implying an enumerator bug.
    if (base.mode == ExecPolicy::Mode::kGpuOnly && topo.num_gpus() == 0) {
      return Status::InvalidArgument(
          "optimizer: no candidates — GPU-only base policy on a no-GPU "
          "topology");
    }
    if (base.mode == ExecPolicy::Mode::kGpuOnly && available_gpus != nullptr &&
        available_gpus->empty()) {
      return Status::Unavailable(
          "optimizer: no candidates — GPU-only base policy with no surviving "
          "GPUs");
    }
    return Status::Internal("optimizer: enumerator produced no candidates");
  }

  PlanCoster coster(spec, catalog, topo, coster_options);
  out->cards = coster.cards();
  Status last_error = Status::OK();
  for (PlanCandidate& cand : candidates) {
    Result<CostEstimate> cost = coster.Cost(cand.plan);
    if (!cost.ok()) {
      // A candidate the coster cannot decompose is dropped, not fatal — the
      // enumerator guarantees at least the heuristic shapes walk cleanly.
      last_error = cost.status();
      continue;
    }
    out->ranked.push_back({std::move(cand), cost.value()});
  }
  if (out->ranked.empty()) {
    return Status::Internal("optimizer: no candidate could be costed: " +
                            last_error.ToString());
  }
  std::stable_sort(out->ranked.begin(), out->ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.cost.total < b.cost.total;
                   });
  return Status::OK();
}

}  // namespace hetex::plan
