#include "plan/expr.h"

#include <sstream>

#include "common/logging.h"

namespace hetex::plan {

ExprPtr Expr::Col(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCol;
  e->col_ = std::move(name);
  return e;
}

ExprPtr Expr::Lit(int64_t value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->value_ = value;
  return e;
}

ExprPtr Expr::Bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  HETEX_CHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBin;
  e->op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

int Expr::Gen(jit::ProgramBuilder& b, ColumnResolver& cols) const {
  using jit::OpCode;
  switch (kind_) {
    case Kind::kCol:
      return cols.ResolveColumn(col_, b);
    case Kind::kConst: {
      const int reg = b.AllocReg();
      b.EmitOp(OpCode::kConst, reg, 0, 0, 0, value_);
      return reg;
    }
    case Kind::kBin: {
      const int lr = lhs_->Gen(b, cols);
      if (op_ == BinOp::kShl) {
        HETEX_CHECK(rhs_->kind_ == Kind::kConst) << "shl needs constant shift";
        const int reg = b.AllocReg();
        b.EmitOp(OpCode::kShl, reg, lr, 0, 0, rhs_->value_);
        return reg;
      }
      const int rr = rhs_->Gen(b, cols);
      const int reg = b.AllocReg();
      OpCode op;
      switch (op_) {
        case BinOp::kAdd: op = OpCode::kAdd; break;
        case BinOp::kSub: op = OpCode::kSub; break;
        case BinOp::kMul: op = OpCode::kMul; break;
        case BinOp::kDiv: op = OpCode::kDiv; break;
        case BinOp::kLt: op = OpCode::kCmpLt; break;
        case BinOp::kLe: op = OpCode::kCmpLe; break;
        case BinOp::kGt: op = OpCode::kCmpGt; break;
        case BinOp::kGe: op = OpCode::kCmpGe; break;
        case BinOp::kEq: op = OpCode::kCmpEq; break;
        case BinOp::kNe: op = OpCode::kCmpNe; break;
        case BinOp::kAnd: op = OpCode::kAnd; break;
        case BinOp::kOr: op = OpCode::kOr; break;
        default: HETEX_CHECK(false) << "unhandled binop"; op = OpCode::kAdd;
      }
      b.EmitOp(op, reg, lr, rr);
      return reg;
    }
  }
  HETEX_CHECK(false);
  return -1;
}

int64_t Expr::Eval(const RowGetter& row) const {
  switch (kind_) {
    case Kind::kCol: return row(col_);
    case Kind::kConst: return value_;
    case Kind::kBin: {
      const int64_t l = lhs_->Eval(row);
      // Short-circuit booleans match generated-code semantics on valid inputs.
      if (op_ == BinOp::kAnd && l == 0) return 0;
      if (op_ == BinOp::kOr && l != 0) return 1;
      const int64_t r = rhs_->Eval(row);
      switch (op_) {
        case BinOp::kAdd: return l + r;
        case BinOp::kSub: return l - r;
        case BinOp::kMul: return l * r;
        case BinOp::kDiv: return l / r;
        case BinOp::kShl: return l << r;
        case BinOp::kLt: return l < r;
        case BinOp::kLe: return l <= r;
        case BinOp::kGt: return l > r;
        case BinOp::kGe: return l >= r;
        case BinOp::kEq: return l == r;
        case BinOp::kNe: return l != r;
        case BinOp::kAnd: return (l != 0) && (r != 0);
        case BinOp::kOr: return (l != 0) || (r != 0);
      }
    }
  }
  return 0;
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kCol: out->insert(col_); break;
    case Kind::kConst: break;
    case Kind::kBin:
      lhs_->CollectColumns(out);
      rhs_->CollectColumns(out);
      break;
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kCol: return col_;
    case Kind::kConst: return std::to_string(value_);
    case Kind::kBin: {
      const char* op = "?";
      switch (op_) {
        case BinOp::kAdd: op = "+"; break;
        case BinOp::kSub: op = "-"; break;
        case BinOp::kMul: op = "*"; break;
        case BinOp::kDiv: op = "/"; break;
        case BinOp::kShl: op = "<<"; break;
        case BinOp::kLt: op = "<"; break;
        case BinOp::kLe: op = "<="; break;
        case BinOp::kGt: op = ">"; break;
        case BinOp::kGe: op = ">="; break;
        case BinOp::kEq: op = "="; break;
        case BinOp::kNe: op = "!="; break;
        case BinOp::kAnd: op = "AND"; break;
        case BinOp::kOr: op = "OR"; break;
      }
      std::ostringstream os;
      os << "(" << lhs_->ToString() << " " << op << " " << rhs_->ToString() << ")";
      return os.str();
    }
  }
  return "?";
}

}  // namespace hetex::plan
