#include "storage/column.h"

#include <algorithm>

namespace hetex::storage {

Dictionary::Dictionary(std::vector<std::string> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
  HETEX_CHECK(!values_.empty());
}

int32_t Dictionary::Code(std::string_view value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  HETEX_CHECK(it != values_.end() && *it == value)
      << "value not in dictionary: " << value;
  return static_cast<int32_t>(it - values_.begin());
}

int32_t Dictionary::LowerBound(std::string_view value) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), value);
  return static_cast<int32_t>(it - values_.begin());
}

int32_t Dictionary::UpperBound(std::string_view value) const {
  auto it = std::upper_bound(values_.begin(), values_.end(), value);
  return static_cast<int32_t>(it - values_.begin());
}

}  // namespace hetex::storage
