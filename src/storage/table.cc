#include "storage/table.h"

#include <cstring>
#include <unordered_set>

#include "common/logging.h"

namespace hetex::storage {

Table::~Table() { Unplace(); }

Column* Table::AddColumn(const std::string& name, ColType type) {
  HETEX_CHECK(col_index_.find(name) == col_index_.end())
      << "duplicate column " << name;
  HETEX_CHECK(!placed()) << "cannot add columns to a placed table";
  col_index_[name] = static_cast<int>(columns_.size());
  columns_.push_back(std::make_unique<Column>(name, type));
  return columns_.back().get();
}

int Table::ColumnIndex(const std::string& name) const {
  const int idx = FindColumn(name);
  HETEX_CHECK(idx >= 0) << "no column '" << name << "' in table " << name_;
  return idx;
}

int Table::FindColumn(const std::string& name) const {
  auto it = col_index_.find(name);
  return it == col_index_.end() ? -1 : it->second;
}

Status Table::Place(const std::vector<sim::MemNodeId>& nodes,
                    memory::MemoryRegistry* mem, bool pinned) {
  HETEX_CHECK(!nodes.empty());
  Unplace();
  placed_mem_ = mem;
  pinned_ = pinned;
  NoteMutation();  // (re)placement publishes new content to cross-query caches

  const uint64_t total = rows();
  const uint64_t n = nodes.size();
  const uint64_t per_node = (total + n - 1) / n;
  uint64_t begin = 0;
  for (uint64_t i = 0; i < n && begin < total; ++i) {
    const uint64_t chunk_rows = std::min(per_node, total - begin);
    Chunk chunk;
    chunk.row_begin = begin;
    chunk.rows = chunk_rows;
    chunk.node = nodes[i];
    chunk.col_data.reserve(columns_.size());
    for (auto& col : columns_) {
      auto alloc = mem->manager(nodes[i]).Allocate(chunk_rows * col->width());
      if (!alloc.ok()) {
        Unplace();
        return alloc.status();
      }
      auto* dst = static_cast<std::byte*>(alloc.value());
      std::memcpy(dst, col->raw() + begin * col->width(), chunk_rows * col->width());
      chunk.col_data.push_back(dst);
    }
    chunks_.push_back(std::move(chunk));
    begin += chunk_rows;
  }
  return Status::OK();
}

void Table::Unplace() {
  if (placed_mem_ == nullptr) return;
  for (auto& chunk : chunks_) {
    for (std::byte* p : chunk.col_data) {
      placed_mem_->manager(chunk.node).Free(p);
    }
  }
  chunks_.clear();
  placed_mem_ = nullptr;
}

namespace {

/// Stats-sample bound: large enough that SSB dimension tables are covered
/// exactly, small enough that a fact-table ANALYZE stays trivial.
constexpr uint64_t kStatsSampleRows = 64 * 1024;

}  // namespace

ColumnStats Table::column_stats(int idx) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_cache_.find(idx);
  if (it != stats_cache_.end()) return it->second;

  const Column& col = *columns_.at(idx);
  ColumnStats stats;
  const uint64_t total = col.rows();
  if (total > 0) {
    const uint64_t stride = total <= kStatsSampleRows
                                ? 1
                                : (total + kStatsSampleRows - 1) / kStatsSampleRows;
    std::unordered_set<int64_t> seen;
    for (uint64_t r = 0; r < total; r += stride) {
      const int64_t v = col.At(r);
      if (stats.sampled == 0 || v < stats.min) stats.min = v;
      if (stats.sampled == 0 || v > stats.max) stats.max = v;
      seen.insert(v);
      ++stats.sampled;
    }
    const uint64_t observed = seen.size();
    if (stride == 1 || observed * 2 < stats.sampled) {
      // Full scan, or a domain much smaller than the sample: the observed
      // count is (close to) the true distinct count.
      stats.distinct = observed;
    } else {
      // Mostly-unique sample (e.g. a key column): scale linearly.
      stats.distinct = observed * stride;
    }
  }
  stats_cache_[idx] = stats;
  return stats;
}

uint64_t Table::SampleRows(uint64_t max_rows,
                           const std::function<void(uint64_t)>& fn) const {
  const uint64_t total = rows();
  if (total == 0 || max_rows == 0) return 0;
  const uint64_t stride =
      total <= max_rows ? 1 : (total + max_rows - 1) / max_rows;
  uint64_t visited = 0;
  for (uint64_t r = 0; r < total; r += stride) {
    fn(r);
    ++visited;
  }
  return visited;
}

uint64_t Table::ColumnSetBytes(const std::vector<std::string>& cols) const {
  uint64_t bytes = 0;
  for (const auto& c : cols) bytes += column(c).bytes();
  return bytes;
}

void Table::DropStaging() {
  HETEX_CHECK(placed()) << "DropStaging before Place loses the data";
  for (auto& col : columns_) {
    auto fresh = std::make_unique<Column>(col->name(), col->type());
    fresh->set_dictionary(col->dictionary());
    *col = std::move(*fresh);
  }
}

Table* Catalog::CreateTable(const std::string& name) {
  HETEX_CHECK(tables_.find(name) == tables_.end()) << "duplicate table " << name;
  auto table = std::make_unique<Table>(name);
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Table* Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table& Catalog::at(const std::string& name) const {
  Table* t = Get(name);
  HETEX_CHECK(t != nullptr) << "no table " << name;
  return *t;
}

}  // namespace hetex::storage
