#ifndef HETEX_STORAGE_COLUMN_H_
#define HETEX_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"

namespace hetex::storage {

/// Physical column types. Strings are stored as order-preserving dictionary codes
/// (kInt32) with the Dictionary kept alongside — standard columnar practice; see
/// DESIGN.md §5.
enum class ColType { kInt32, kInt64 };

inline uint32_t ColWidth(ColType t) { return t == ColType::kInt32 ? 4 : 8; }

/// \brief Order-preserving string dictionary.
///
/// Codes are assigned in sorted order, so string range predicates (e.g. SSB Q2.2's
/// `p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'`) translate to integer range
/// predicates on codes.
class Dictionary {
 public:
  /// Builds from the (deduplicated, then sorted) value domain.
  explicit Dictionary(std::vector<std::string> values);

  /// Code of an exact value; CHECK-fails if absent.
  int32_t Code(std::string_view value) const;

  /// First code whose value is >= `value` (for range predicate bounds).
  int32_t LowerBound(std::string_view value) const;
  /// First code whose value is > `value`.
  int32_t UpperBound(std::string_view value) const;

  const std::string& Value(int32_t code) const { return values_.at(code); }
  int32_t size() const { return static_cast<int32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
};

/// \brief In-build (staging) column: typed append storage filled by data
/// generators, host-resident. Table::Place() copies staging data into per-node
/// chunks for engine execution; staging stays available for the reference
/// evaluator.
class Column {
 public:
  Column(std::string name, ColType type) : name_(std::move(name)), type_(type) {}

  void Append(int64_t v) {
    if (type_ == ColType::kInt32) {
      data32_.push_back(static_cast<int32_t>(v));
    } else {
      data64_.push_back(v);
    }
  }

  int64_t At(uint64_t row) const {
    return type_ == ColType::kInt32 ? data32_[row] : data64_[row];
  }

  uint64_t rows() const {
    return type_ == ColType::kInt32 ? data32_.size() : data64_.size();
  }

  const std::byte* raw() const {
    return type_ == ColType::kInt32
               ? reinterpret_cast<const std::byte*>(data32_.data())
               : reinterpret_cast<const std::byte*>(data64_.data());
  }

  const std::string& name() const { return name_; }
  ColType type() const { return type_; }
  uint32_t width() const { return ColWidth(type_); }
  uint64_t bytes() const { return rows() * width(); }

  /// Attaches the dictionary of a string-encoded column.
  void set_dictionary(const Dictionary* dict) { dict_ = dict; }
  const Dictionary* dictionary() const { return dict_; }

 private:
  std::string name_;
  ColType type_;
  std::vector<int32_t> data32_;
  std::vector<int64_t> data64_;
  const Dictionary* dict_ = nullptr;
};

}  // namespace hetex::storage

#endif  // HETEX_STORAGE_COLUMN_H_
