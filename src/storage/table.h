#ifndef HETEX_STORAGE_TABLE_H_
#define HETEX_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "memory/memory_manager.h"
#include "storage/column.h"

namespace hetex::storage {

/// \brief Lightweight per-column statistics for planner cardinality estimation.
///
/// Computed lazily from a bounded stride sample of the staging data (a real
/// engine's ANALYZE). `sampled == 0` means no staging rows were available
/// (e.g. after DropStaging); estimators must fall back to catalog defaults.
struct ColumnStats {
  int64_t min = 0;
  int64_t max = 0;
  uint64_t distinct = 0;  ///< estimated distinct values (exact when fully sampled)
  uint64_t sampled = 0;   ///< rows the estimate was computed from
};

/// \brief A placed columnar table.
///
/// Data is generated into host staging vectors, then Place() distributes it as
/// contiguous per-column chunks over a set of memory nodes (the paper evenly
/// distributes the dataset across the sockets for CPU experiments, or pre-loads
/// columns into GPU device memory for the Fig. 4 regime). All columns share the
/// same chunking so scans stay row-aligned.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  Column* AddColumn(const std::string& name, ColType type);

  const std::string& name() const { return name_; }
  uint64_t rows() const { return columns_.empty() ? 0 : columns_[0]->rows(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  int ColumnIndex(const std::string& name) const;
  /// Like ColumnIndex, but returns -1 instead of aborting when absent.
  int FindColumn(const std::string& name) const;
  Column& column(int idx) { return *columns_.at(idx); }
  const Column& column(int idx) const { return *columns_.at(idx); }
  const Column& column(const std::string& name) const {
    return *columns_.at(ColumnIndex(name));
  }

  /// One placed slice of the table: rows [row_begin, row_begin + rows) on `node`.
  struct Chunk {
    uint64_t row_begin;
    uint64_t rows;
    sim::MemNodeId node;
    std::vector<std::byte*> col_data;  ///< one buffer per column
  };

  /// Distributes rows evenly over `nodes` (one chunk per node), allocating chunk
  /// buffers from each node's memory manager. `pinned` marks host chunks as
  /// DMA-pinned; unpinned chunks transfer at pageable bandwidth (DBMS G, §6.2).
  Status Place(const std::vector<sim::MemNodeId>& nodes,
               memory::MemoryRegistry* mem, bool pinned = true);

  bool placed() const { return !chunks_.empty(); }
  const std::vector<Chunk>& chunks() const { return chunks_; }
  bool pinned() const { return pinned_; }

  /// Bytes of the named columns (planner working-set estimates, e.g. the
  /// fits-in-GPU-memory decision for Fig. 4 vs Fig. 5).
  uint64_t ColumnSetBytes(const std::vector<std::string>& cols) const;

  /// Planner statistics of column `idx`: min/max/distinct over a bounded stride
  /// sample of the staging data. Computed on first request and cached;
  /// `sampled == 0` when staging was dropped before stats were taken.
  ColumnStats column_stats(int idx) const;

  /// \brief Row sample for planner selectivity probes.
  ///
  /// Invokes `fn(row)` for up to `max_rows` evenly-strided staging rows and
  /// returns the number of rows visited (0 when staging is unavailable). The
  /// coster evaluates filter predicates over this sample to estimate
  /// selectivities the way an engine would from a catalog sample.
  uint64_t SampleRows(uint64_t max_rows,
                      const std::function<void(uint64_t)>& fn) const;

  /// Frees the staging vectors after Place() when no reference evaluation will
  /// read them (large synthetic benchmark inputs).
  void DropStaging();

  /// \name Content version
  /// Monotone counter bumped whenever the table's placed content changes
  /// (every Place(), plus explicit NoteMutation() calls from ingest paths).
  /// Cross-query caches — the serving layer's result cache and shared
  /// hash-table builds — embed this epoch in their content keys, so a
  /// mutation invalidates every cached artifact derived from the old data.
  /// @{
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }
  void NoteMutation() {
    mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  /// @}

 private:
  void Unplace();

  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, int> col_index_;
  std::vector<Chunk> chunks_;
  memory::MemoryRegistry* placed_mem_ = nullptr;
  bool pinned_ = true;

  std::atomic<uint64_t> mutation_epoch_{0};

  mutable std::mutex stats_mu_;
  mutable std::unordered_map<int, ColumnStats> stats_cache_;
};

/// Name -> table registry.
class Catalog {
 public:
  Table* CreateTable(const std::string& name);
  Table* Get(const std::string& name) const;
  Table& at(const std::string& name) const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hetex::storage

#endif  // HETEX_STORAGE_TABLE_H_
