#ifndef HETEX_SSB_SSB_H_
#define HETEX_SSB_SSB_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/query_spec.h"
#include "storage/table.h"

namespace hetex::ssb {

/// \brief Star Schema Benchmark database: generator + the 13 query definitions.
///
/// Faithful to O'Neil et al.'s SSB schema and predicate structure (the paper's
/// benchmark, §6): lineorder fact table with date/customer/supplier/part
/// dimensions, selectivities driven by the same dimensional predicates. String
/// attributes are order-preserving dictionary codes (DESIGN.md §5); brand
/// sequence numbers are zero-padded so lexicographic order matches numeric order.
///
/// Scale: lineorder has scale * 6,000,000 rows (SF1 = 6M). The evaluation scales
/// the paper's SF100/SF1000 regimes down proportionally (DESIGN.md §1).
class Ssb {
 public:
  struct Options {
    double scale = 0.1;
    uint64_t seed = 42;
    uint64_t lineorder_rows = 0;  ///< override (tests); 0 = scale * 6M
    /// Dimension-size overrides (0 = scale-derived). Scaled-down miniatures can
    /// keep the *paper-scale* hash-table size classes (cache- vs DRAM-resident)
    /// by scaling dimensions less aggressively than the fact table; see
    /// EXPERIMENTS.md.
    uint64_t customer_rows = 0;
    uint64_t supplier_rows = 0;
    uint64_t part_rows = 0;
  };

  /// Generates all five tables into `catalog` (staging only; call
  /// Table::Place to position them on memory nodes).
  Ssb(const Options& options, storage::Catalog* catalog);

  const storage::Dictionary& region_dict() const { return *region_dict_; }
  const storage::Dictionary& nation_dict() const { return *nation_dict_; }
  const storage::Dictionary& city_dict() const { return *city_dict_; }
  const storage::Dictionary& mfgr_dict() const { return *mfgr_dict_; }
  const storage::Dictionary& category_dict() const { return *category_dict_; }
  const storage::Dictionary& brand_dict() const { return *brand_dict_; }
  const storage::Dictionary& yearmonth_dict() const { return *yearmonth_dict_; }

  /// Query definitions; `flight` in 1..4, `idx` 1-based within the flight
  /// (e.g. Query(2, 2) = Q2.2).
  plan::QuerySpec Query(int flight, int idx) const;

  /// All 13 queries in paper order (Q1.1 .. Q4.3).
  std::vector<plan::QuerySpec> AllQueries() const;

  /// Queries in `flight` (1..4) — the single source of the SSB matrix shape.
  /// 0 for out-of-range flights.
  static int FlightSize(int flight);

  /// Names of the fact/dimension columns a query touches (placement planning).
  static std::vector<std::string> FactColumns(const plan::QuerySpec& spec);

  storage::Catalog* catalog() const { return catalog_; }

 private:
  void GenerateDate();
  void GenerateCustomer(uint64_t rows);
  void GenerateSupplier(uint64_t rows);
  void GeneratePart(uint64_t rows);
  void GenerateLineorder(uint64_t rows);

  storage::Catalog* catalog_;
  Options options_;
  std::unique_ptr<storage::Dictionary> region_dict_;
  std::unique_ptr<storage::Dictionary> nation_dict_;
  std::unique_ptr<storage::Dictionary> city_dict_;
  std::unique_ptr<storage::Dictionary> mfgr_dict_;
  std::unique_ptr<storage::Dictionary> category_dict_;
  std::unique_ptr<storage::Dictionary> brand_dict_;
  std::unique_ptr<storage::Dictionary> yearmonth_dict_;
  std::vector<int32_t> datekeys_;  ///< generated date keys (FK domain)
};

}  // namespace hetex::ssb

#endif  // HETEX_SSB_SSB_H_
