#include "ssb/ssb.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"

namespace hetex::ssb {

using plan::And;
using plan::Between;
using plan::Col;
using plan::Eq;
using plan::Ge;
using plan::Le;
using plan::Lit;
using plan::Lt;
using plan::Mul;
using plan::Or;
using plan::Sub;
using storage::ColType;
using storage::Column;
using storage::Dictionary;
using storage::Table;

namespace {

constexpr int kRegions = 5;
const char* kRegionNames[kRegions] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                      "MIDDLE EAST"};
// 5 nations per region, TPC-H style.
const char* kNationNames[25] = {
    "ALGERIA", "ETHIOPIA", "KENYA",     "MOROCCO", "MOZAMBIQUE",   // AFRICA
    "ARGENTINA", "BRAZIL", "CANADA",    "PERU",    "UNITED STATES",  // AMERICA
    "CHINA",   "INDIA",    "INDONESIA", "JAPAN",   "VIETNAM",       // ASIA
    "FRANCE",  "GERMANY",  "ROMANIA",   "RUSSIA",  "UNITED KINGDOM",  // EUROPE
    "EGYPT",   "IRAN",     "IRAQ",      "JORDAN",  "SAUDI ARABIA"};  // MIDDLE EAST

const char* kMonthNames[12] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

/// SSB city: first 9 characters of the nation (space padded) plus a digit.
std::string CityName(int nation, int digit) {
  std::string base = kNationNames[nation];
  base.resize(9, ' ');
  return base + std::to_string(digit);
}

std::string MfgrName(int m) { return "MFGR#" + std::to_string(m); }          // 1..5
std::string CategoryName(int m, int c) {
  return "MFGR#" + std::to_string(m) + std::to_string(c);                    // 11..55
}
std::string BrandName(int m, int c, int b) {                                 // 01..40
  char buf[16];
  std::snprintf(buf, sizeof(buf), "MFGR#%d%d%02d", m, c, b);
  return buf;
}

}  // namespace

Ssb::Ssb(const Options& options, storage::Catalog* catalog)
    : catalog_(catalog), options_(options) {
  // Dictionaries (order-preserving, fixed domains).
  std::vector<std::string> regions(kRegionNames, kRegionNames + kRegions);
  region_dict_ = std::make_unique<Dictionary>(std::move(regions));
  std::vector<std::string> nations(kNationNames, kNationNames + 25);
  nation_dict_ = std::make_unique<Dictionary>(std::move(nations));
  std::vector<std::string> cities;
  for (int n = 0; n < 25; ++n) {
    for (int d = 0; d < 10; ++d) cities.push_back(CityName(n, d));
  }
  city_dict_ = std::make_unique<Dictionary>(std::move(cities));
  std::vector<std::string> mfgrs, categories, brands;
  for (int m = 1; m <= 5; ++m) {
    mfgrs.push_back(MfgrName(m));
    for (int c = 1; c <= 5; ++c) {
      categories.push_back(CategoryName(m, c));
      for (int b = 1; b <= 40; ++b) brands.push_back(BrandName(m, c, b));
    }
  }
  mfgr_dict_ = std::make_unique<Dictionary>(std::move(mfgrs));
  category_dict_ = std::make_unique<Dictionary>(std::move(categories));
  brand_dict_ = std::make_unique<Dictionary>(std::move(brands));
  std::vector<std::string> yearmonths;
  for (int y = 1992; y <= 1998; ++y) {
    for (int m = 0; m < 12; ++m) {
      yearmonths.push_back(std::string(kMonthNames[m]) + std::to_string(y));
    }
  }
  yearmonth_dict_ = std::make_unique<Dictionary>(std::move(yearmonths));

  const double sf = options.scale;
  const uint64_t lo_rows = options.lineorder_rows > 0
                               ? options.lineorder_rows
                               : static_cast<uint64_t>(sf * 6'000'000);
  const auto scaled = [&](double base, uint64_t min_rows) {
    return std::max<uint64_t>(static_cast<uint64_t>(base * sf), min_rows);
  };

  GenerateDate();
  GenerateCustomer(options.customer_rows ? options.customer_rows
                                         : scaled(30'000, 200));
  GenerateSupplier(options.supplier_rows ? options.supplier_rows
                                         : scaled(2'000, 40));
  GeneratePart(options.part_rows ? options.part_rows : scaled(200'000, 400));
  GenerateLineorder(std::max<uint64_t>(lo_rows, 1000));
}

void Ssb::GenerateDate() {
  Table* t = catalog_->CreateTable("date");
  Column* datekey = t->AddColumn("d_datekey", ColType::kInt32);
  Column* year = t->AddColumn("d_year", ColType::kInt32);
  Column* yearmonthnum = t->AddColumn("d_yearmonthnum", ColType::kInt32);
  Column* weeknuminyear = t->AddColumn("d_weeknuminyear", ColType::kInt32);
  Column* yearmonth = t->AddColumn("d_yearmonth", ColType::kInt32);
  yearmonth->set_dictionary(yearmonth_dict_.get());

  for (int y = 1992; y <= 1998; ++y) {
    int day_of_year = 0;
    for (int m = 0; m < 12; ++m) {
      for (int d = 1; d <= kDaysInMonth[m]; ++d) {
        ++day_of_year;
        const int32_t key = y * 10000 + (m + 1) * 100 + d;
        datekeys_.push_back(key);
        datekey->Append(key);
        year->Append(y);
        yearmonthnum->Append(y * 100 + (m + 1));
        weeknuminyear->Append(1 + (day_of_year - 1) / 7);
        yearmonth->Append(
            yearmonth_dict_->Code(std::string(kMonthNames[m]) + std::to_string(y)));
      }
    }
  }
}

void Ssb::GenerateCustomer(uint64_t rows) {
  Rng rng(options_.seed ^ 0xC0FFEE);
  Table* t = catalog_->CreateTable("customer");
  Column* key = t->AddColumn("c_custkey", ColType::kInt32);
  Column* city = t->AddColumn("c_city", ColType::kInt32);
  Column* nation = t->AddColumn("c_nation", ColType::kInt32);
  Column* region = t->AddColumn("c_region", ColType::kInt32);
  city->set_dictionary(city_dict_.get());
  nation->set_dictionary(nation_dict_.get());
  region->set_dictionary(region_dict_.get());

  for (uint64_t i = 0; i < rows; ++i) {
    const int n = static_cast<int>(rng.Uniform(25));
    const int d = static_cast<int>(rng.Uniform(10));
    key->Append(static_cast<int64_t>(i + 1));
    city->Append(city_dict_->Code(CityName(n, d)));
    nation->Append(nation_dict_->Code(kNationNames[n]));
    region->Append(region_dict_->Code(kRegionNames[n / 5]));
  }
}

void Ssb::GenerateSupplier(uint64_t rows) {
  Rng rng(options_.seed ^ 0x5EED5);
  Table* t = catalog_->CreateTable("supplier");
  Column* key = t->AddColumn("s_suppkey", ColType::kInt32);
  Column* city = t->AddColumn("s_city", ColType::kInt32);
  Column* nation = t->AddColumn("s_nation", ColType::kInt32);
  Column* region = t->AddColumn("s_region", ColType::kInt32);
  city->set_dictionary(city_dict_.get());
  nation->set_dictionary(nation_dict_.get());
  region->set_dictionary(region_dict_.get());

  for (uint64_t i = 0; i < rows; ++i) {
    const int n = static_cast<int>(rng.Uniform(25));
    const int d = static_cast<int>(rng.Uniform(10));
    key->Append(static_cast<int64_t>(i + 1));
    city->Append(city_dict_->Code(CityName(n, d)));
    nation->Append(nation_dict_->Code(kNationNames[n]));
    region->Append(region_dict_->Code(kRegionNames[n / 5]));
  }
}

void Ssb::GeneratePart(uint64_t rows) {
  Rng rng(options_.seed ^ 0xBEEF);
  Table* t = catalog_->CreateTable("part");
  Column* key = t->AddColumn("p_partkey", ColType::kInt32);
  Column* mfgr = t->AddColumn("p_mfgr", ColType::kInt32);
  Column* category = t->AddColumn("p_category", ColType::kInt32);
  Column* brand = t->AddColumn("p_brand1", ColType::kInt32);
  mfgr->set_dictionary(mfgr_dict_.get());
  category->set_dictionary(category_dict_.get());
  brand->set_dictionary(brand_dict_.get());

  for (uint64_t i = 0; i < rows; ++i) {
    const int m = 1 + static_cast<int>(rng.Uniform(5));
    const int c = 1 + static_cast<int>(rng.Uniform(5));
    const int b = 1 + static_cast<int>(rng.Uniform(40));
    key->Append(static_cast<int64_t>(i + 1));
    mfgr->Append(mfgr_dict_->Code(MfgrName(m)));
    category->Append(category_dict_->Code(CategoryName(m, c)));
    brand->Append(brand_dict_->Code(BrandName(m, c, b)));
  }
}

void Ssb::GenerateLineorder(uint64_t rows) {
  Rng rng(options_.seed);
  Table* t = catalog_->CreateTable("lineorder");
  Column* orderdate = t->AddColumn("lo_orderdate", ColType::kInt32);
  Column* custkey = t->AddColumn("lo_custkey", ColType::kInt32);
  Column* partkey = t->AddColumn("lo_partkey", ColType::kInt32);
  Column* suppkey = t->AddColumn("lo_suppkey", ColType::kInt32);
  Column* quantity = t->AddColumn("lo_quantity", ColType::kInt32);
  Column* extendedprice = t->AddColumn("lo_extendedprice", ColType::kInt32);
  Column* discount = t->AddColumn("lo_discount", ColType::kInt32);
  Column* revenue = t->AddColumn("lo_revenue", ColType::kInt32);
  Column* supplycost = t->AddColumn("lo_supplycost", ColType::kInt32);

  const uint64_t customers = catalog_->at("customer").rows();
  const uint64_t suppliers = catalog_->at("supplier").rows();
  const uint64_t parts = catalog_->at("part").rows();

  for (uint64_t i = 0; i < rows; ++i) {
    orderdate->Append(datekeys_[rng.Uniform(datekeys_.size())]);
    custkey->Append(static_cast<int64_t>(rng.Uniform(customers) + 1));
    partkey->Append(static_cast<int64_t>(rng.Uniform(parts) + 1));
    suppkey->Append(static_cast<int64_t>(rng.Uniform(suppliers) + 1));
    const int64_t qty = rng.UniformRange(1, 50);
    const int64_t price = rng.UniformRange(90, 55450);
    const int64_t disc = rng.UniformRange(0, 10);
    quantity->Append(qty);
    extendedprice->Append(price);
    discount->Append(disc);
    revenue->Append(price * (100 - disc) / 100);
    supplycost->Append(rng.UniformRange(54, 33277));
  }
}

plan::QuerySpec Ssb::Query(int flight, int idx) const {
  using jit::AggFunc;
  plan::QuerySpec q;
  q.name = "Q" + std::to_string(flight) + "." + std::to_string(idx);
  q.fact_table = "lineorder";

  // Each join carries the optimizer's cardinality estimate of its filtered
  // build side (selectivity x table rows), the statistic a real engine reads
  // from its catalog.
  auto add_join = [&](const char* table, plan::ExprPtr filter, const char* key,
                      std::vector<std::string> payload, const char* probe_key,
                      double selectivity) {
    plan::JoinSpec join{table, std::move(filter), key, std::move(payload),
                        probe_key};
    const uint64_t rows = catalog_->at(table).rows();
    join.build_rows_estimate =
        std::max<uint64_t>(1, static_cast<uint64_t>(rows * selectivity));
    q.joins.push_back(std::move(join));
  };
  auto date_join = [&](plan::ExprPtr filter, std::vector<std::string> payload,
                       double sel) {
    add_join("date", std::move(filter), "d_datekey", std::move(payload),
             "lo_orderdate", sel);
  };
  auto part_join = [&](plan::ExprPtr filter, std::vector<std::string> payload,
                       double sel) {
    add_join("part", std::move(filter), "p_partkey", std::move(payload),
             "lo_partkey", sel);
  };
  auto supp_join = [&](plan::ExprPtr filter, std::vector<std::string> payload,
                       double sel) {
    add_join("supplier", std::move(filter), "s_suppkey", std::move(payload),
             "lo_suppkey", sel);
  };
  auto cust_join = [&](plan::ExprPtr filter, std::vector<std::string> payload,
                       double sel) {
    add_join("customer", std::move(filter), "c_custkey", std::move(payload),
             "lo_custkey", sel);
  };
  const auto region = [&](const char* r) { return Lit(region_dict_->Code(r)); };
  const auto nation = [&](const char* n) { return Lit(nation_dict_->Code(n)); };
  const auto city = [&](const char* c) { return Lit(city_dict_->Code(c)); };

  if (flight == 1) {
    // sum(lo_extendedprice * lo_discount) with date + quantity/discount filters.
    q.aggs.push_back(
        {Mul(Col("lo_extendedprice"), Col("lo_discount")), AggFunc::kSum,
         "revenue"});
    if (idx == 1) {
      date_join(Eq(Col("d_year"), Lit(1993)), {}, 1.0 / 7);
      q.fact_filter = And(Between(Col("lo_discount"), 1, 3),
                          Lt(Col("lo_quantity"), Lit(25)));
    } else if (idx == 2) {
      date_join(Eq(Col("d_yearmonthnum"), Lit(199401)), {}, 1.0 / 84);
      q.fact_filter = And(Between(Col("lo_discount"), 4, 6),
                          Between(Col("lo_quantity"), 26, 35));
    } else {
      date_join(And(Eq(Col("d_weeknuminyear"), Lit(6)),
                    Eq(Col("d_year"), Lit(1994))),
                {}, 7.0 / 2556);
      q.fact_filter = And(Between(Col("lo_discount"), 5, 7),
                          Between(Col("lo_quantity"), 26, 35));
    }
    q.expected_groups = 1;
    return q;
  }

  if (flight == 2) {
    // sum(lo_revenue) group by d_year, p_brand1.
    if (idx == 1) {
      part_join(Eq(Col("p_category"), Lit(category_dict_->Code("MFGR#12"))),
                {"p_brand1"}, 1.0 / 25);
      supp_join(Eq(Col("s_region"), region("AMERICA")), {}, 1.0 / 5);
    } else if (idx == 2) {
      part_join(Between(Col("p_brand1"), brand_dict_->Code("MFGR#2221"),
                        brand_dict_->Code("MFGR#2228")),
                {"p_brand1"}, 8.0 / 1000);
      supp_join(Eq(Col("s_region"), region("ASIA")), {}, 1.0 / 5);
      q.uses_string_range_predicate = true;  // DBMS G fails Q2.2 (§6.1)
    } else {
      part_join(Eq(Col("p_brand1"), Lit(brand_dict_->Code("MFGR#2221"))),
                {"p_brand1"}, 1.0 / 1000);
      supp_join(Eq(Col("s_region"), region("EUROPE")), {}, 1.0 / 5);
    }
    date_join(nullptr, {"d_year"}, 1.0);
    q.group_by = {Col("d_year"), Col("p_brand1")};
    q.aggs.push_back({Col("lo_revenue"), AggFunc::kSum, "revenue"});
    q.expected_groups = 7 * 1000;
    q.group_domain_cardinality = 7 * 1000;
    return q;
  }

  if (flight == 3) {
    // sum(lo_revenue) by customer/supplier geography and year.
    std::string c_attr = idx == 1 ? "c_nation" : "c_city";
    std::string s_attr = idx == 1 ? "s_nation" : "s_city";
    if (idx == 1) {
      cust_join(Eq(Col("c_region"), region("ASIA")), {c_attr}, 1.0 / 5);
      supp_join(Eq(Col("s_region"), region("ASIA")), {s_attr}, 1.0 / 5);
      date_join(Between(Col("d_year"), 1992, 1997), {"d_year"}, 6.0 / 7);
    } else if (idx == 2) {
      cust_join(Eq(Col("c_nation"), nation("UNITED STATES")), {c_attr}, 1.0 / 25);
      supp_join(Eq(Col("s_nation"), nation("UNITED STATES")), {s_attr}, 1.0 / 25);
      date_join(Between(Col("d_year"), 1992, 1997), {"d_year"}, 6.0 / 7);
    } else {
      auto ki = [&](const char* col) {
        return Or(Eq(Col(col), city("UNITED KI1")), Eq(Col(col), city("UNITED KI5")));
      };
      cust_join(ki("c_city"), {c_attr}, 2.0 / 250);
      supp_join(ki("s_city"), {s_attr}, 2.0 / 250);
      if (idx == 3) {
        date_join(Between(Col("d_year"), 1992, 1997), {"d_year"}, 6.0 / 7);
      } else {  // Q3.4
        date_join(Eq(Col("d_yearmonth"), Lit(yearmonth_dict_->Code("Dec1997"))),
                  {"d_year"}, 1.0 / 84);
      }
    }
    q.group_by = {Col(c_attr), Col(s_attr), Col("d_year")};
    q.aggs.push_back({Col("lo_revenue"), AggFunc::kSum, "revenue"});
    q.expected_groups = idx == 1 ? 25 * 25 * 7 : 16 * 1024;
    q.group_domain_cardinality = idx == 1 ? 25 * 25 * 7 : 250 * 250 * 7;
    return q;
  }

  // Flight 4: sum(lo_revenue - lo_supplycost) ("profit").
  HETEX_CHECK(flight == 4);
  if (idx == 1) {
    cust_join(Eq(Col("c_region"), region("AMERICA")), {"c_nation"}, 1.0 / 5);
    supp_join(Eq(Col("s_region"), region("AMERICA")), {}, 1.0 / 5);
    part_join(Or(Eq(Col("p_mfgr"), Lit(mfgr_dict_->Code("MFGR#1"))),
                 Eq(Col("p_mfgr"), Lit(mfgr_dict_->Code("MFGR#2")))),
              {}, 2.0 / 5);
    date_join(nullptr, {"d_year"}, 1.0);
    q.group_by = {Col("d_year"), Col("c_nation")};
    q.group_domain_cardinality = 7 * 25;
  } else if (idx == 2) {
    cust_join(Eq(Col("c_region"), region("AMERICA")), {}, 1.0 / 5);
    supp_join(Eq(Col("s_region"), region("AMERICA")), {"s_nation"}, 1.0 / 5);
    part_join(Or(Eq(Col("p_mfgr"), Lit(mfgr_dict_->Code("MFGR#1"))),
                 Eq(Col("p_mfgr"), Lit(mfgr_dict_->Code("MFGR#2")))),
              {"p_category"}, 2.0 / 5);
    date_join(Or(Eq(Col("d_year"), Lit(1997)), Eq(Col("d_year"), Lit(1998))),
              {"d_year"}, 2.0 / 7);
    q.group_by = {Col("d_year"), Col("s_nation"), Col("p_category")};
    q.group_domain_cardinality = 7 * 25 * 25;
  } else {
    cust_join(Eq(Col("c_region"), region("AMERICA")), {}, 1.0 / 5);
    supp_join(Eq(Col("s_nation"), nation("UNITED STATES")), {"s_city"}, 1.0 / 25);
    part_join(Eq(Col("p_category"), Lit(category_dict_->Code("MFGR#14"))),
              {"p_brand1"}, 1.0 / 25);
    date_join(Or(Eq(Col("d_year"), Lit(1997)), Eq(Col("d_year"), Lit(1998))),
              {"d_year"}, 2.0 / 7);
    q.group_by = {Col("d_year"), Col("s_city"), Col("p_brand1")};
    // year x city x brand: the dense estimation domain that kills DBMS G at
    // non-fitting scale (Q4.3, paper 6.2).
    q.group_domain_cardinality = 7ull * 250 * 1000;
  }
  q.aggs.push_back(
      {Sub(Col("lo_revenue"), Col("lo_supplycost")), jit::AggFunc::kSum, "profit"});
  q.expected_groups = 16 * 1024;
  return q;
}

int Ssb::FlightSize(int flight) {
  static constexpr int kFlights[4] = {3, 3, 4, 3};
  return flight >= 1 && flight <= 4 ? kFlights[flight - 1] : 0;
}

std::vector<plan::QuerySpec> Ssb::AllQueries() const {
  std::vector<plan::QuerySpec> queries;
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= FlightSize(f); ++i) queries.push_back(Query(f, i));
  }
  return queries;
}

std::vector<std::string> Ssb::FactColumns(const plan::QuerySpec& spec) {
  std::set<std::string> cols;
  if (spec.fact_filter != nullptr) spec.fact_filter->CollectColumns(&cols);
  for (const auto& join : spec.joins) cols.insert(spec.fact_table.empty() ? "" : join.probe_key);
  for (const auto& agg : spec.aggs) {
    if (agg.value != nullptr) agg.value->CollectColumns(&cols);
  }
  std::vector<std::string> out;
  std::set<std::string> payloads;
  for (const auto& join : spec.joins) {
    for (const auto& p : join.payload) payloads.insert(p);
  }
  for (const auto& c : cols) {
    if (!c.empty() && payloads.find(c) == payloads.end()) out.push_back(c);
  }
  return out;
}

}  // namespace hetex::ssb
