#include "ssb/reference.h"

#include <algorithm>
#include <map>
#include <functional>
#include <unordered_map>

#include "common/logging.h"
#include "jit/hash_table.h"

namespace hetex::ssb {

namespace {

using plan::ExprPtr;
using plan::QuerySpec;
using storage::Table;

/// Join-side index: key -> matching dimension row numbers.
struct DimIndex {
  const Table* table = nullptr;
  std::unordered_multimap<int64_t, uint64_t> rows;
};

}  // namespace

std::vector<std::vector<int64_t>> ReferenceExecute(const QuerySpec& spec,
                                                   const storage::Catalog& catalog) {
  const Table& fact = catalog.at(spec.fact_table);

  // Build dimension indexes (applying build-side filters).
  std::vector<DimIndex> dims(spec.joins.size());
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const auto& join = spec.joins[j];
    const Table& table = catalog.at(join.build_table);
    dims[j].table = &table;
    const auto getter = [&](uint64_t row) {
      return [&table, row](const std::string& name) {
        return table.column(name).At(row);
      };
    };
    for (uint64_t r = 0; r < table.rows(); ++r) {
      if (join.build_filter != nullptr && join.build_filter->Eval(getter(r)) == 0) {
        continue;
      }
      dims[j].rows.emplace(table.column(join.build_key).At(r), r);
    }
  }

  const bool grouped = !spec.group_by.empty();
  const ExprPtr group_key =
      grouped ? plan::CombineGroupKeys(spec.group_by) : nullptr;

  std::vector<int64_t> scalar_accs(spec.aggs.size());
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    scalar_accs[a] = jit::AggIdentity(spec.aggs[a].func);
  }
  std::map<int64_t, std::vector<int64_t>> groups;

  // Row environment: fact columns plus the payload columns of matched dim rows.
  std::vector<uint64_t> matched(spec.joins.size());
  uint64_t fact_row = 0;
  const auto env = [&](const std::string& name) -> int64_t {
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      for (const auto& p : spec.joins[j].payload) {
        if (p == name) return dims[j].table->column(name).At(matched[j]);
      }
    }
    return fact.column(name).At(fact_row);
  };

  const auto accumulate = [&] {
    if (grouped) {
      const int64_t key = group_key->Eval(env);
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.resize(spec.aggs.size());
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          // COUNT groups accumulate literal 1s with SUM, as the engine does.
          const jit::AggFunc f = spec.aggs[a].func == jit::AggFunc::kCount
                                     ? jit::AggFunc::kSum
                                     : spec.aggs[a].func;
          it->second[a] = jit::AggIdentity(f);
        }
      }
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        const auto& agg = spec.aggs[a];
        if (agg.func == jit::AggFunc::kCount) {
          jit::AggApply(jit::AggFunc::kSum, &it->second[a], 1);
        } else {
          jit::AggApply(agg.func, &it->second[a], agg.value->Eval(env));
        }
      }
    } else {
      for (size_t a = 0; a < spec.aggs.size(); ++a) {
        const auto& agg = spec.aggs[a];
        const int64_t v =
            agg.func == jit::AggFunc::kCount ? 0 : agg.value->Eval(env);
        jit::AggApply(agg.func, &scalar_accs[a], v);
      }
    }
  };

  // Nested-loop over join matches, mirroring the generated probe loops.
  std::function<void(size_t)> probe = [&](size_t j) {
    if (j == spec.joins.size()) {
      accumulate();
      return;
    }
    const int64_t key = fact.column(spec.joins[j].probe_key).At(fact_row);
    auto [lo, hi] = dims[j].rows.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      matched[j] = it->second;
      probe(j + 1);
    }
  };

  for (uint64_t r = 0; r < fact.rows(); ++r) {
    fact_row = r;
    if (spec.fact_filter != nullptr) {
      const auto fact_getter = [&](const std::string& name) {
        return fact.column(name).At(r);
      };
      if (spec.fact_filter->Eval(fact_getter) == 0) continue;
    }
    probe(0);
  }

  std::vector<std::vector<int64_t>> out;
  if (grouped) {
    for (const auto& [key, accs] : groups) {
      std::vector<int64_t> row;
      row.push_back(key);
      row.insert(row.end(), accs.begin(), accs.end());
      out.push_back(std::move(row));
    }
  } else {
    out.push_back(scalar_accs);
  }
  return out;
}

}  // namespace hetex::ssb
