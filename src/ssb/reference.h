#ifndef HETEX_SSB_REFERENCE_H_
#define HETEX_SSB_REFERENCE_H_

#include <vector>

#include "plan/query_spec.h"
#include "storage/table.h"

namespace hetex::ssb {

/// \brief Naive single-threaded evaluator over staging data.
///
/// The correctness oracle for every engine in this repository (HetExchange
/// configurations, DBMS C, DBMS G): hash-joins the dimensions row-at-a-time with
/// std containers and mirrors the engine's result layout exactly — scalar
/// aggregates yield one row of accumulators; group-bys yield
/// [combined key, aggregates...] sorted by key.
std::vector<std::vector<int64_t>> ReferenceExecute(const plan::QuerySpec& spec,
                                                   const storage::Catalog& catalog);

}  // namespace hetex::ssb

#endif  // HETEX_SSB_REFERENCE_H_
